package obs

import (
	"strings"

	"camouflage/internal/sim"
	"camouflage/internal/stats"
)

// MetricsDelta is the compact metric payload a worker piggybacks on its
// heartbeat frames: counter increments and histogram bucket increments
// since the previous frame, plus the absolute values of gauges that
// changed. Histogram bin edges ride along only the first time a
// histogram appears (frames travel a reliable in-order pipe, so the
// receiver can cache them). encoding/json sorts map keys, so the wire
// form is deterministic.
type MetricsDelta struct {
	Counters map[string]uint64    `json:"counters,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Hists    map[string]HistDelta `json:"hists,omitempty"`
}

// HistDelta carries one histogram's bucket increments; Edges only on
// first appearance.
type HistDelta struct {
	Edges  []uint64 `json:"edges,omitempty"`
	Counts []uint64 `json:"counts"`
}

// Empty reports whether the delta carries nothing.
func (d *MetricsDelta) Empty() bool {
	return d == nil || (len(d.Counters) == 0 && len(d.Gauges) == 0 && len(d.Hists) == 0)
}

// DeltaTracker computes successive MetricsDeltas for one registry. The
// baseline advances only when Delta is called, so wall-clock heartbeat
// throttling can skip frames without losing increments — the next
// emitted frame carries everything since the last one that shipped.
type DeltaTracker struct {
	reg       *Registry
	lastC     map[string]uint64
	lastG     map[string]float64
	lastH     map[string][]uint64
	sentEdges map[string]bool
}

// NewDeltaTracker returns a tracker with a zero baseline (the first
// Delta reports all activity since registry creation). Nil-safe.
func NewDeltaTracker(reg *Registry) *DeltaTracker {
	if reg == nil {
		return nil
	}
	return &DeltaTracker{
		reg:       reg,
		lastC:     make(map[string]uint64),
		lastG:     make(map[string]float64),
		lastH:     make(map[string][]uint64),
		sentEdges: make(map[string]bool),
	}
}

// Delta returns the changes since the previous call, advancing the
// baseline, or nil when nothing changed.
func (t *DeltaTracker) Delta() *MetricsDelta {
	if t == nil {
		return nil
	}
	d := &MetricsDelta{}
	r := t.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		v := c.Value()
		if dv := v - t.lastC[name]; dv != 0 {
			if d.Counters == nil {
				d.Counters = make(map[string]uint64)
			}
			d.Counters[name] = dv
			t.lastC[name] = v
		}
	}
	for name, g := range r.gauges {
		v := g.Value()
		last, seen := t.lastG[name]
		if !seen && v == 0 {
			continue // never-set zero gauges stay off the wire
		}
		if !seen || v != last {
			if d.Gauges == nil {
				d.Gauges = make(map[string]float64)
			}
			d.Gauges[name] = v
			t.lastG[name] = v
		}
	}
	for name, h := range r.hists {
		last := t.lastH[name]
		var counts []uint64
		changed := false
		for i := range h.counts {
			v := h.counts[i].Load()
			var prev uint64
			if i < len(last) {
				prev = last[i]
			}
			if counts == nil {
				counts = make([]uint64, len(h.counts))
			}
			counts[i] = v - prev
			if counts[i] != 0 {
				changed = true
			}
		}
		if !changed {
			continue
		}
		hd := HistDelta{Counts: counts}
		if !t.sentEdges[name] {
			hd.Edges = make([]uint64, len(h.binning.Edges))
			for i, e := range h.binning.Edges {
				hd.Edges[i] = uint64(e)
			}
			t.sentEdges[name] = true
		}
		if d.Hists == nil {
			d.Hists = make(map[string]HistDelta)
		}
		d.Hists[name] = hd
		abs := make([]uint64, len(h.counts))
		for i := range h.counts {
			abs[i] = h.counts[i].Load()
		}
		t.lastH[name] = abs
	}
	if d.Empty() {
		return nil
	}
	return d
}

// Merger folds worker MetricsDeltas into a supervisor registry under an
// interned name prefix (one Merger per attempt, prefix like
// "worker.<jobhash>." or "worker.<jobhash>.hedge."). Counter and bucket
// increments Add; gauges Set. Apply may be called from supervisor
// heartbeat goroutines — instrument mutation is atomic and name interning
// takes the registry mutex.
type Merger struct {
	reg    *Registry
	prefix string
	hist   *History // optional: merged scalars also recorded as series
	// interned instrument handles so steady-state frames do no map work
	// in the registry.
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*CycleHist
}

// NewMerger returns a merger writing under prefix, first zeroing any
// instruments already registered there: a restarted attempt re-reports
// from a fresh process registry, so `worker.<hash>.` always reflects
// the live attempt rather than double-counting its predecessors. The
// segregated `.hedge.` subtree under a primary prefix is spared — the
// hedge sibling's own merger manages it, and a restarted primary must
// not wipe hedge-attempt metrics.
func NewMerger(reg *Registry, prefix string) *Merger {
	if reg == nil {
		return nil
	}
	skip := ""
	if !strings.HasSuffix(prefix, ".hedge.") {
		skip = prefix + "hedge."
	}
	reg.zeroPrefix(prefix, skip)
	return &Merger{
		reg:      reg,
		prefix:   prefix,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*CycleHist),
	}
}

// SetHistory makes Apply additionally record every merged scalar as a
// (cycle, value) sample under its prefixed name.
func (m *Merger) SetHistory(h *History) {
	if m != nil {
		m.hist = h
	}
}

// Apply folds one delta into the registry at the frame's grid cycle.
// Nil-safe.
func (m *Merger) Apply(d *MetricsDelta, cycle sim.Cycle) {
	if m == nil || d.Empty() {
		return
	}
	for name, dv := range d.Counters {
		c, ok := m.counters[name]
		if !ok {
			c = m.reg.Counter(m.prefix + name)
			m.counters[name] = c
		}
		c.Add(dv)
		m.hist.Append(m.prefix+name, cycle, float64(c.Value()))
	}
	for name, v := range d.Gauges {
		g, ok := m.gauges[name]
		if !ok {
			g = m.reg.Gauge(m.prefix + name)
			m.gauges[name] = g
		}
		g.Set(v)
		m.hist.Append(m.prefix+name, cycle, v)
	}
	for name, hd := range d.Hists {
		h, ok := m.hists[name]
		if !ok {
			if len(hd.Edges) == 0 {
				continue // edges lost (shouldn't happen on a pipe); skip
			}
			edges := make([]sim.Cycle, len(hd.Edges))
			for i, e := range hd.Edges {
				edges[i] = sim.Cycle(e)
			}
			h = m.reg.CycleHist(m.prefix+name, stats.Binning{Edges: edges})
			m.hists[name] = h
		}
		for i, dv := range hd.Counts {
			if dv != 0 && i < len(h.counts) {
				h.counts[i].Add(dv)
			}
		}
		// Mirror ForEachScalar: the histogram's scalar face is its
		// _total sum, so the fleet history shows the same series an
		// in-process capture would.
		var total uint64
		for i := range h.counts {
			total += h.counts[i].Load()
		}
		m.hist.Append(m.prefix+name+"_total", cycle, float64(total))
	}
}

// Prefix returns the merger's interned name prefix.
func (m *Merger) Prefix() string {
	if m == nil {
		return ""
	}
	return m.prefix
}

// ZeroPrefix resets every instrument whose name starts with prefix:
// counters and histogram buckets to zero, gauges to zero. Registration
// (the sorted index) is untouched.
func (r *Registry) ZeroPrefix(prefix string) {
	r.zeroPrefix(prefix, "")
}

// zeroPrefix is ZeroPrefix with an optional carve-out: names starting
// with skip (itself under prefix) are left alone.
func (r *Registry) zeroPrefix(prefix, skip string) {
	if r == nil {
		return
	}
	match := func(name string) bool {
		return strings.HasPrefix(name, prefix) &&
			(skip == "" || !strings.HasPrefix(name, skip))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		if match(name) {
			c.v.Store(0)
		}
	}
	for name, g := range r.gauges {
		if match(name) {
			g.Set(0)
		}
	}
	for name, h := range r.hists {
		if match(name) {
			for i := range h.counts {
				h.counts[i].Store(0)
			}
		}
	}
}
