package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"camouflage/internal/sim"
	"camouflage/internal/stats"
)

// --- time-series history ----------------------------------------------

func historyDoc(t *testing.T, h *History, prefix, agg string) map[string]any {
	t.Helper()
	var sb strings.Builder
	if _, err := h.DumpJSON(&sb, prefix, agg); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("history dump not valid JSON: %v\n%s", err, sb.String())
	}
	return doc
}

func seriesOf(t *testing.T, doc map[string]any, name string) []any {
	t.Helper()
	series, ok := doc["series"].(map[string]any)
	if !ok {
		t.Fatalf("no series object in %v", doc)
	}
	s, ok := series[name].([]any)
	if !ok {
		t.Fatalf("series %q missing in %v", name, series)
	}
	return s
}

func TestHistoryRingOverwriteAndEviction(t *testing.T) {
	h := NewHistory(HistoryOpts{Cap: 4})
	for c := 1; c <= 10; c++ {
		h.Append("m", sim.Cycle(c*100), float64(c))
	}
	s := seriesOf(t, historyDoc(t, h, "", ""), "m")
	if len(s) != 4 {
		t.Fatalf("ring kept %d samples, want 4", len(s))
	}
	first := s[0].(map[string]any)
	if first["c"].(float64) != 700 {
		t.Fatalf("oldest retained cycle = %v, want 700", first["c"])
	}
	// Same-cycle append overwrites rather than appends (grid re-publish
	// idempotence).
	h.Append("m", 1000, 99)
	s = seriesOf(t, historyDoc(t, h, "", ""), "m")
	last := s[len(s)-1].(map[string]any)
	if len(s) != 4 || last["v"].(float64) != 99 {
		t.Fatalf("same-cycle overwrite: len=%d last=%v", len(s), last)
	}
}

func TestHistoryCaptureAndPrefixQuery(t *testing.T) {
	r := NewRegistry()
	r.Counter("tenant0.reqs").Add(5)
	r.Counter("tenant1.reqs").Add(7)
	r.Gauge("tenant0.drift").Set(0.5)
	h := NewHistory(HistoryOpts{})
	h.Capture(r, 1000)
	r.Counter("tenant0.reqs").Add(1)
	h.Capture(r, 2000)

	doc := historyDoc(t, h, "tenant0.", "")
	series := doc["series"].(map[string]any)
	if len(series) != 2 {
		t.Fatalf("prefix query matched %d series, want 2: %v", len(series), series)
	}
	s := seriesOf(t, doc, "tenant0.reqs")
	if len(s) != 2 || s[1].(map[string]any)["v"].(float64) != 6 {
		t.Fatalf("captured counter series wrong: %v", s)
	}

	// Aggregates collapse the matched series per cycle; an exact prefix
	// scopes the aggregate to one series for easy expectations.
	for _, tc := range []struct {
		agg  string
		want float64
	}{{"sum", 5}, {"max", 5}, {"mean", 5}} {
		adoc := historyDoc(t, h, "tenant0.reqs", tc.agg)
		as := seriesOf(t, adoc, tc.agg+"(tenant0.reqs*)")
		if len(as) != 2 {
			t.Fatalf("agg %s: %d points, want 2", tc.agg, len(as))
		}
		if v := as[0].(map[string]any)["v"].(float64); v != tc.want {
			t.Fatalf("agg %s at cycle 1000 = %v, want %v", tc.agg, v, tc.want)
		}
	}
	sum := seriesOf(t, historyDoc(t, h, "tenant", "sum"), "sum(tenant*)")
	if v := sum[0].(map[string]any)["v"].(float64); v != 12.5 {
		t.Fatalf("sum over all tenant series at 1000 = %v, want 12.5", v)
	}
}

func TestHistoryMaxSeriesDropsCounted(t *testing.T) {
	h := NewHistory(HistoryOpts{MaxSeries: 2})
	h.Append("a", 1, 1)
	h.Append("b", 1, 1)
	h.Append("c", 1, 1) // over the bound
	h.Append("c", 2, 1)
	if h.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", h.Dropped())
	}
	doc := historyDoc(t, h, "", "")
	if doc["dropped_series"].(float64) != 2 {
		t.Fatalf("dump dropped_series = %v", doc["dropped_series"])
	}
	if _, ok := doc["series"].(map[string]any)["c"]; ok {
		t.Fatal("over-bound series was stored")
	}
}

func TestHistoryDumpByteStableAndNilSafe(t *testing.T) {
	h := NewHistory(HistoryOpts{})
	h.Append("b", 10, 2)
	h.Append("a", 10, 1)
	var d1, d2 strings.Builder
	h.DumpJSON(&d1, "", "")
	h.DumpJSON(&d2, "", "")
	if d1.String() != d2.String() {
		t.Fatal("same store dumped differently twice")
	}
	if !strings.Contains(d1.String(), `"a":[{"c":10,"v":1}],"b":`) {
		t.Fatalf("series not in sorted name order: %s", d1.String())
	}
	var nb strings.Builder
	var nilH *History
	nilH.DumpJSON(&nb, "", "")
	var doc map[string]any
	if err := json.Unmarshal([]byte(nb.String()), &doc); err != nil {
		t.Fatalf("nil history dump not valid JSON: %v", err)
	}
}

// --- SLO monitor ------------------------------------------------------

func TestParseSLOSpec(t *testing.T) {
	rules, err := ParseSLOSpec("drift_l1>0.15:3, drift_l1_epoch>0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Metric != "drift_l1" || rules[0].Max != 0.15 ||
		rules[0].Sustain != 3 || rules[1].Sustain != 1 {
		t.Fatalf("parsed %+v", rules)
	}
	for _, bad := range []string{"nometric", ">1", "m>x", "m>1:0", "m>1:x"} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
	if rules, _ := ParseSLOSpec(""); rules != nil {
		t.Fatal("empty spec should yield no rules")
	}
}

func TestSLOMonitorSustainedRaiseAndClear(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("shaper.req.0.drift_l1")
	rules, _ := ParseSLOSpec("drift_l1>0.2:3")
	var log bytes.Buffer
	m := NewSLOMonitor(rules, reg, &log)

	grid := func(cycle sim.Cycle, v float64) {
		g.Set(v)
		m.Check(reg, cycle)
	}
	// Two strides above threshold: not sustained yet.
	grid(100, 0.5)
	grid(200, 0.5)
	if v, _ := reg.Value("obs.alerts.raised"); v != 0 {
		t.Fatal("alert raised before sustain window")
	}
	// Dip resets the streak.
	grid(300, 0.1)
	grid(400, 0.5)
	grid(500, 0.5)
	if v, _ := reg.Value("obs.alerts.raised"); v != 0 {
		t.Fatal("streak survived a dip below threshold")
	}
	// Three consecutive: raised exactly once.
	grid(600, 0.5)
	if v, _ := reg.Value("obs.alerts.raised"); v != 1 {
		t.Fatalf("raised = %v, want 1", v)
	}
	grid(700, 0.6) // still violating: no duplicate alert
	if v, _ := reg.Value("obs.alerts.raised"); v != 1 {
		t.Fatal("duplicate raise while active")
	}
	if v, _ := reg.Value("obs.alerts.active"); v != 1 {
		t.Fatalf("active = %v, want 1", v)
	}
	// Recovery clears.
	grid(800, 0.05)
	if v, _ := reg.Value("obs.alerts.cleared"); v != 1 {
		t.Fatal("clear not emitted")
	}
	if v, _ := reg.Value("obs.alerts.active"); v != 0 {
		t.Fatal("active gauge not decremented")
	}

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("alert log has %d lines, want 2:\n%s", len(lines), log.String())
	}
	want := `{"cycle":600,"rule":"drift_l1>0.2:3","metric":"shaper.req.0.drift_l1","value":0.5,"threshold":0.2,"sustained":3,"kind":"raised"}`
	if lines[0] != want {
		t.Fatalf("alert line:\n got %s\nwant %s", lines[0], want)
	}
	for _, l := range lines {
		var a map[string]any
		if err := json.Unmarshal([]byte(l), &a); err != nil {
			t.Fatalf("alert line not JSON: %v", err)
		}
	}
}

func TestSLOMonitorDrainAndIngest(t *testing.T) {
	// Worker side: monitor without a sink queues alerts for the frames.
	wreg := NewRegistry()
	wg := wreg.Gauge("drift_l1")
	rules, _ := ParseSLOSpec("drift_l1>0.1")
	wm := NewSLOMonitor(rules, wreg, nil)
	wg.Set(0.9)
	wm.Check(wreg, 1000)
	alerts := wm.Drain()
	if len(alerts) != 1 || alerts[0].Kind != "raised" {
		t.Fatalf("drained %v", alerts)
	}
	if wm.Drain() != nil {
		t.Fatal("second drain not empty")
	}

	// Wire round trip: alerts ride frames as JSON.
	b, err := json.Marshal(alerts)
	if err != nil {
		t.Fatal(err)
	}
	var wired []Alert
	if err := json.Unmarshal(b, &wired); err != nil {
		t.Fatal(err)
	}

	// Supervisor side: ingest rewrites the metric under the worker
	// prefix and feeds counters, log and ring.
	sreg := NewRegistry()
	var log bytes.Buffer
	sm := NewSLOMonitor(rules, sreg, &log)
	sm.Ingest("worker.abc.", wired)
	if v, _ := sreg.Value("obs.alerts.raised"); v != 1 {
		t.Fatal("ingest did not count")
	}
	if !strings.Contains(log.String(), `"metric":"worker.abc.drift_l1"`) {
		t.Fatalf("ingested alert not prefixed:\n%s", log.String())
	}
	var sb strings.Builder
	sm.DumpJSON(&sb)
	var doc struct {
		Alerts []map[string]any `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil || len(doc.Alerts) != 1 {
		t.Fatalf("/alerts doc: %v %s", err, sb.String())
	}
}

func TestSLOMonitorMetricSuffixMatching(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("shaper.resp.3.drift_l1").Set(1)
	reg.Gauge("drift_l1").Set(1)
	reg.Gauge("not_drift_l1").Set(1) // suffix without a dot: no match
	rules, _ := ParseSLOSpec("drift_l1>0.5")
	m := NewSLOMonitor(rules, reg, nil)
	m.Check(reg, 1)
	if v, _ := reg.Value("obs.alerts.raised"); v != 2 {
		t.Fatalf("raised = %v, want 2 (exact + dotted suffix, not substring)", v)
	}
}

// TestSLOMonitorDuplicateCycleIdempotent pins streak accounting to one
// step per grid cycle: the core loop's trailing end-of-run sample may
// revisit the final in-loop grid point, and that must not let a
// Sustain=N rule raise a stride early.
func TestSLOMonitorDuplicateCycleIdempotent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("shaper.req.0.drift_l1")
	rules, _ := ParseSLOSpec("drift_l1>0.2:2")
	m := NewSLOMonitor(rules, reg, nil)
	g.Set(0.9)
	m.Check(reg, 100)
	m.Check(reg, 100) // duplicate delivery of the same grid cycle
	if v, _ := reg.Value("obs.alerts.raised"); v != 0 {
		t.Fatalf("raised = %v after one distinct cycle, want 0", v)
	}
	m.Check(reg, 200)
	if v, _ := reg.Value("obs.alerts.raised"); v != 1 {
		t.Fatalf("raised = %v after two distinct cycles, want 1", v)
	}
}

// TestForEachScalarReportsHistTotals pins the documented scalar view of
// a histogram: its _total sum, visible to history capture and SLO rules.
func TestForEachScalarReportsHistTotals(t *testing.T) {
	reg := NewRegistry()
	h := reg.CycleHist("shaper.req.0.queue_wait", stats.Binning{Edges: []sim.Cycle{0, 10, 20}})
	h.Observe(5)
	h.Observe(15)
	h.Observe(25)
	reg.Counter("reqs").Inc()
	got := map[string]float64{}
	reg.ForEachScalar(func(name string, value float64) { got[name] = value })
	if got["shaper.req.0.queue_wait_total"] != 3 {
		t.Fatalf("hist total missing from scalar walk: %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("unexpected scalar set (per-bin lines must stay off it): %v", got)
	}

	// An SLO rule on the _total suffix can now fire.
	rules, _ := ParseSLOSpec("queue_wait_total>2")
	m := NewSLOMonitor(rules, reg, nil)
	m.Check(reg, 100)
	if v, _ := reg.Value("obs.alerts.raised"); v != 1 {
		t.Fatalf("hist-total rule did not fire: raised = %v", v)
	}
}

// TestMergerRestartSparesHedgeSubtree: zeroing the primary prefix on a
// restarted attempt must not wipe the hedge sibling's segregated
// metrics, which the hedge merger manages independently.
func TestMergerRestartSparesHedgeSubtree(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("worker.abc.reqs").Add(10)
	reg.Counter("worker.abc.hedge.reqs").Add(7)

	NewMerger(reg, "worker.abc.")
	if v, _ := reg.Value("worker.abc.reqs"); v != 0 {
		t.Fatalf("primary restart did not zero its own prefix: %v", v)
	}
	if v, _ := reg.Value("worker.abc.hedge.reqs"); v != 7 {
		t.Fatalf("primary restart wiped the hedge subtree: %v", v)
	}

	// A restarted hedge zeroes only its own subtree.
	reg.Counter("worker.abc.reqs").Add(3)
	NewMerger(reg, "worker.abc.hedge.")
	if v, _ := reg.Value("worker.abc.hedge.reqs"); v != 0 {
		t.Fatalf("hedge restart did not zero its subtree: %v", v)
	}
	if v, _ := reg.Value("worker.abc.reqs"); v != 3 {
		t.Fatalf("hedge restart touched the primary: %v", v)
	}
}

// --- delta tracker / merger -------------------------------------------

func TestDeltaTrackerAndMergerRoundTrip(t *testing.T) {
	// Worker registry accumulates; the tracker emits deltas.
	wreg := NewRegistry()
	c := wreg.Counter("reqs")
	g := wreg.Gauge("drift")
	bin := stats.Binning{Edges: []sim.Cycle{0, 100}}
	h := wreg.CycleHist("lat", bin)
	tr := NewDeltaTracker(wreg)

	c.Add(10)
	g.Set(0.5)
	h.Observe(50)
	h.Observe(150)
	d1 := tr.Delta()
	if d1 == nil || d1.Counters["reqs"] != 10 || d1.Gauges["drift"] != 0.5 {
		t.Fatalf("first delta %+v", d1)
	}
	if len(d1.Hists["lat"].Edges) != 2 || d1.Hists["lat"].Counts[0] != 1 || d1.Hists["lat"].Counts[1] != 1 {
		t.Fatalf("first hist delta %+v", d1.Hists["lat"])
	}

	// Nothing changed: no frame payload.
	if d := tr.Delta(); d != nil {
		t.Fatalf("idle delta %+v", d)
	}

	c.Add(5)
	h.Observe(10)
	d2 := tr.Delta()
	if d2.Counters["reqs"] != 5 {
		t.Fatalf("second counter delta %v", d2.Counters)
	}
	if len(d2.Hists["lat"].Edges) != 0 {
		t.Fatal("edges resent on second delta")
	}
	if _, ok := d2.Gauges["drift"]; ok {
		t.Fatal("unchanged gauge resent")
	}

	// Wire round trip then merge under a worker prefix.
	merge := func(reg *Registry, m *Merger, d *MetricsDelta, cycle sim.Cycle) {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var wired MetricsDelta
		if err := json.Unmarshal(b, &wired); err != nil {
			t.Fatal(err)
		}
		m.Apply(&wired, cycle)
	}
	sreg := NewRegistry()
	hist := NewHistory(HistoryOpts{})
	m := NewMerger(sreg, "worker.abc.")
	m.SetHistory(hist)
	merge(sreg, m, d1, 1000)
	merge(sreg, m, d2, 2000)

	if v, _ := sreg.Value("worker.abc.reqs"); v != 15 {
		t.Fatalf("merged counter = %v, want 15", v)
	}
	if v, _ := sreg.Value("worker.abc.drift"); v != 0.5 {
		t.Fatalf("merged gauge = %v", v)
	}
	dump := sreg.Dump()
	if !strings.Contains(dump, "worker.abc.lat_total 3") {
		t.Fatalf("merged hist missing from dump:\n%s", dump)
	}
	s := seriesOf(t, historyDoc(t, hist, "worker.abc.reqs", ""), "worker.abc.reqs")
	if len(s) != 2 || s[1].(map[string]any)["v"].(float64) != 15 {
		t.Fatalf("merged history series %v", s)
	}

	// A fresh merger for a restarted attempt zeroes the prefix first.
	m2 := NewMerger(sreg, "worker.abc.")
	if v, _ := sreg.Value("worker.abc.reqs"); v != 0 {
		t.Fatalf("restart did not zero the prefix: %v", v)
	}
	tr2 := NewDeltaTracker(wreg) // fresh process: zero baseline
	d := tr2.Delta()
	m2.Apply(d, 3000)
	if v, _ := sreg.Value("worker.abc.reqs"); v != 15 {
		t.Fatalf("re-reported counter = %v, want 15", v)
	}
}

// --- server endpoints -------------------------------------------------

func TestServerFleetEndpointsAndEmptyDocs(t *testing.T) {
	// No History, no Alerts: both endpoints must still serve valid empty
	// documents before any grid publish.
	s := &Server{Registry: NewRegistry()}
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, sb.String()
	}

	resp, body := get("/alerts")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("/alerts status=%d type=%q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var alerts struct {
		Alerts []any `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(body), &alerts); err != nil || alerts.Alerts == nil {
		t.Fatalf("/alerts empty doc invalid: %v %q", err, body)
	}

	resp, body = get("/metrics/history")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/history status %d", resp.StatusCode)
	}
	var hist map[string]any
	if err := json.Unmarshal([]byte(body), &hist); err != nil {
		t.Fatalf("/metrics/history empty doc invalid: %v %q", err, body)
	}
	if _, ok := hist["series"].(map[string]any); !ok {
		t.Fatalf("/metrics/history missing series object: %q", body)
	}

	resp, _ = get("/metrics/history?agg=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad agg accepted: %d", resp.StatusCode)
	}

	// Content-Type on /metrics names the exposition format.
	resp, _ = get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}

	// HEAD: headers only, no body.
	hresp, err := http.Head("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || len(hb) != 0 {
		t.Fatalf("HEAD /metrics status=%d body=%q", hresp.StatusCode, hb)
	}
	if ct := hresp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("HEAD /metrics Content-Type = %q", ct)
	}

	// Other methods: 405 with Allow.
	presp, err := http.Post("http://"+addr+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed || presp.Header.Get("Allow") == "" {
		t.Fatalf("POST /metrics status=%d allow=%q", presp.StatusCode, presp.Header.Get("Allow"))
	}
}

func TestServerHistoryAndAlertsPopulated(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("core.0.drift_l1").Set(0.9)
	hist := NewHistory(HistoryOpts{})
	rules, _ := ParseSLOSpec("drift_l1>0.5")
	mon := NewSLOMonitor(rules, reg, nil)
	b := &Bundle{Registry: reg, History: hist, Alerts: mon}
	b.GridSample(4096)

	s := &Server{Registry: reg, History: hist, Alerts: mon}
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + addr + "/metrics/history?prefix=core.")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"core.0.drift_l1":[{"c":4096,"v":0.9}]`) {
		t.Fatalf("history body: %s", body)
	}

	resp, err = http.Get("http://" + addr + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"kind":"raised"`) {
		t.Fatalf("alerts body: %s", body)
	}
}

// --- tracer edge cases ------------------------------------------------

func TestTracerSamplingEdgeN(t *testing.T) {
	for _, n := range []uint64{0, 1} {
		tr, err := NewTracer(filepath.Join(t.TempDir(), fmt.Sprintf("n%d", n)), n, 42)
		if err != nil {
			t.Fatal(err)
		}
		for id := uint64(1); id <= 100; id++ {
			if !tr.Sampled(id) {
				t.Fatalf("sampleN=%d: id %d not sampled (0 and 1 mean trace everything)", n, id)
			}
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTracerArtifactsCompleteAfterClose(t *testing.T) {
	base := filepath.Join(t.TempDir(), "flush")
	tr, err := NewTracer(base, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.BeginRun("flush-test")
	// Enough spans to overflow the 64 KiB bufio windows several times;
	// anything not flushed on Close would truncate the artifacts.
	const n = 5000
	for i := 1; i <= n; i++ {
		tr.Delivered(traceRequest(uint64(i), i%4))
	}
	if got := tr.Spans(); got != n {
		t.Fatalf("spans = %d, want %d", got, n)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	jb, err := os.ReadFile(base + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(jb, &doc); err != nil {
		t.Fatalf("chrome trace truncated or invalid after Close: %v", err)
	}
	if want := n * 7; len(doc.TraceEvents) != want {
		t.Fatalf("chrome events = %d, want %d", len(doc.TraceEvents), want)
	}

	lb, err := os.ReadFile(base + ".jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(lb), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("jsonl lines = %d, want %d", len(lines), n)
	}
	if !strings.HasSuffix(string(lb), "\n") {
		t.Fatal("jsonl does not end with a complete line")
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("final jsonl line torn: %v", err)
	}
}

// --- profile capture --------------------------------------------------

func TestProfileCaptureBoundedAndDeterministicNames(t *testing.T) {
	dir := t.TempDir()
	p := &ProfileCapture{Dir: dir, Max: 2, CPU: 10 * time.Millisecond}
	if !p.Capture("stall-abc") {
		t.Fatal("first capture refused")
	}
	if !p.Capture("drift_l1>0.2") {
		t.Fatal("second capture refused")
	}
	if p.Capture("third") {
		t.Fatal("capture beyond Max accepted")
	}
	p.Wait()
	for _, want := range []string{
		"capture-01-stall-abc.heap.pb.gz",
		"capture-02-drift_l1_0_2.heap.pb.gz",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing %s: %v", want, err)
		}
	}
	// A nil capture and an unconfigured one are inert.
	var nilP *ProfileCapture
	if nilP.Capture("x") {
		t.Fatal("nil capture succeeded")
	}
	if (&ProfileCapture{}).Capture("x") {
		t.Fatal("dirless capture succeeded")
	}
}
