package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the opt-in live-introspection endpoint. It serves:
//
//	/metrics      registry text dump (`name value` lines, sorted)
//	/jobs         JSON snapshot from the Jobs function (campaign state)
//	/debug/vars   expvar
//	/debug/pprof  runtime profiles
//
// Everything it reads is atomic (registry) or snapshot-by-callback
// (jobs), so scraping never blocks the simulation loop.
type Server struct {
	Registry *Registry
	// Jobs, if set, returns the value rendered as JSON at /jobs.
	Jobs func() any

	ln  net.Listener
	srv *http.Server
}

// Serve starts listening on addr (e.g. "localhost:6060") in a background
// goroutine and returns the bound address, useful when addr has port 0.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.Registry.WriteTo(w)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.Jobs == nil {
			w.Write([]byte("[]\n"))
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Jobs())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener. Safe on a Server that never served.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// ProgressReporter prints a one-line status to w every interval until
// stopped. The line function is called from the reporter goroutine, so
// it must only read atomic/published state (Registry values, campaign
// progress snapshots).
type ProgressReporter struct {
	stop chan struct{}
	done sync.WaitGroup
	once sync.Once
}

// StartProgress launches a reporter writing line() to w every interval.
// A nil line or non-positive interval yields an inert reporter.
func StartProgress(w io.Writer, interval time.Duration, line func() string) *ProgressReporter {
	p := &ProgressReporter{stop: make(chan struct{})}
	if line == nil || interval <= 0 {
		close(p.stop)
		return p
	}
	p.done.Add(1)
	go func() {
		defer p.done.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				fmt.Fprintln(w, line())
			}
		}
	}()
	return p
}

// Stop halts the reporter and waits for its final line to flush. Safe to
// call multiple times and on a nil reporter.
func (p *ProgressReporter) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		select {
		case <-p.stop:
		default:
			close(p.stop)
		}
		p.done.Wait()
	})
}
