package obs

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/internal/iofault"
)

// Server is the opt-in live-introspection endpoint. It serves:
//
//	/metrics          registry text dump (`name value` lines, sorted)
//	/metrics/history  time-series JSON (?prefix= filter, ?agg=sum|max|mean)
//	/alerts           recent SLO alert transitions as JSON
//	/jobs             JSON snapshot from the Jobs function (campaign state)
//	/debug/vars       expvar
//	/debug/pprof      runtime profiles
//
// Everything it reads is atomic (registry) or snapshot-by-callback
// (jobs), so scraping never blocks the simulation loop.
//
// Degradation policy: observability is an accessory, never a
// load-bearing wall. If the accept loop dies — a broken listener, an
// injected accept fault, fd exhaustion — the server degrades to
// disabled: the simulation keeps running untouched, the registry's
// "obs.server.degraded" gauge goes to 1 (visible to anything still able
// to read the registry in-process), and a one-line notice lands on
// stderr. Per-connection write failures only cost that response.
type Server struct {
	Registry *Registry
	// History, if set, backs /metrics/history. A nil store still serves
	// a valid empty document.
	History *History
	// Alerts, if set, backs /alerts. A nil monitor still serves a valid
	// empty document.
	Alerts *SLOMonitor
	// Jobs, if set, returns the value rendered as JSON at /jobs.
	Jobs func() any
	// Faults, if set, wraps the listener with injected accept/write
	// faults (the chaos layer).
	Faults *iofault.Injector
	// Warn receives the one-line degradation notice; nil selects
	// os.Stderr.
	Warn io.Writer

	ln       net.Listener
	srv      *http.Server
	degraded atomic.Bool
	done     chan struct{}
}

// Serve starts listening on addr (e.g. "localhost:6060") in a background
// goroutine and returns the bound address, useful when addr has port 0.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", endpoint(metricsContentType, func(w http.ResponseWriter, _ *http.Request) {
		s.Registry.WriteTo(w)
	}))
	mux.HandleFunc("/metrics/history", endpoint("application/json", func(w http.ResponseWriter, r *http.Request) {
		agg := r.URL.Query().Get("agg")
		switch agg {
		case "", "sum", "max", "mean":
		default:
			http.Error(w, "agg must be sum, max or mean", http.StatusBadRequest)
			return
		}
		s.History.DumpJSON(w, r.URL.Query().Get("prefix"), agg)
	}))
	mux.HandleFunc("/alerts", endpoint("application/json", func(w http.ResponseWriter, _ *http.Request) {
		s.Alerts.DumpJSON(w)
	}))
	mux.HandleFunc("/jobs", endpoint("application/json", func(w http.ResponseWriter, _ *http.Request) {
		if s.Jobs == nil {
			w.Write([]byte("[]\n"))
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Jobs())
	}))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	s.done = make(chan struct{})
	// The degraded gauge starts published at 0 so a healthy run's
	// registry dump names it (and a scrape-based alert can watch it).
	s.Registry.Gauge("obs.server.degraded").Set(0)
	served := s.Faults.WrapListener(ln)
	go func() {
		defer close(s.done)
		err := s.srv.Serve(served)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.degrade(err)
		}
	}()
	return ln.Addr().String(), nil
}

// metricsContentType is the Prometheus text exposition type: the dump
// is `name value` lines (histograms as `name{ge="edge"} count`), which
// exposition-format scrapers accept.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// endpoint wraps a GET handler with HEAD support (headers only — the
// body is never rendered, so a HEAD probe costs no scrape work) and a
// 405 with an Allow header for other methods.
func endpoint(contentType string, get func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", contentType)
			get(w, r)
		case http.MethodHead:
			w.Header().Set("Content-Type", contentType)
			w.WriteHeader(http.StatusOK)
		default:
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	}
}

// degrade flips the server into disabled mode after a fatal accept-loop
// failure: gauge, one stderr line, done. The simulation is untouched.
func (s *Server) degrade(cause error) {
	s.degraded.Store(true)
	s.Registry.Gauge("obs.server.degraded").Set(1)
	w := s.Warn
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "obs: introspection server degraded to disabled: %v\n", cause)
	// Release the port and any lingering connections; nothing will be
	// served again on this Server.
	s.srv.Close()
}

// Degraded reports whether the accept loop died and the server disabled
// itself.
func (s *Server) Degraded() bool {
	if s == nil {
		return false
	}
	return s.degraded.Load()
}

// Close hard-stops the listener and every in-flight connection. Safe on
// a Server that never served. Prefer Shutdown for orderly teardown.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight scrapes get until ctx's deadline to finish, then the
// remaining connections are hard-closed (so teardown is bounded even
// with a stuck client). Safe on a nil Server and on one that never
// served.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline expired with connections still open: bound the
		// teardown with a hard close, reporting the graceful failure.
		s.srv.Close()
	}
	<-s.done
	return err
}

// ProgressReporter prints a one-line status to w every interval until
// stopped. The line function is called from the reporter goroutine, so
// it must only read atomic/published state (Registry values, campaign
// progress snapshots).
type ProgressReporter struct {
	stop chan struct{}
	done sync.WaitGroup
	once sync.Once
}

// StartProgress launches a reporter writing line() to w every interval.
// A nil line or non-positive interval yields an inert reporter.
func StartProgress(w io.Writer, interval time.Duration, line func() string) *ProgressReporter {
	p := &ProgressReporter{stop: make(chan struct{})}
	if line == nil || interval <= 0 {
		close(p.stop)
		return p
	}
	p.done.Add(1)
	go func() {
		defer p.done.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				fmt.Fprintln(w, line())
			}
		}
	}()
	return p
}

// Stop halts the reporter and waits for its final line to flush. Safe to
// call multiple times and on a nil reporter.
func (p *ProgressReporter) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		select {
		case <-p.stop:
		default:
			close(p.stop)
		}
		p.done.Wait()
	})
}
