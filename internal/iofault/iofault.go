// Package iofault is the infrastructure chaos layer: an injectable
// filesystem/environment abstraction that the simulator's own durability
// machinery — checkpoint writes (internal/ckpt), campaign journal
// flushes (internal/campaign) and the live introspection server
// (internal/obs) — performs its I/O through, plus a deterministic,
// seed-driven fault injector that makes those operations fail the way
// real disks and networks fail: ENOSPC, short (torn) writes, fsync
// failure, rename failure, slow I/O, bit flips in data at rest, and
// refused/accepted-then-broken connections.
//
// The distinction from internal/fault matters: that package injects
// faults *inside* the simulated machine (NoC drops, DRAM timing) to
// exercise the simulator's invariant checkers; this package injects
// faults into the simulator's *own infrastructure* to prove that a
// multi-hour campaign survives the failures clouds actually have. The
// contract every consumer upholds is graceful degradation: an injected
// infrastructure fault may cost durability (a missed checkpoint, a
// buffered journal line, a dead metrics endpoint) but must never abort,
// stall, or perturb the simulation itself — simulation outputs stay
// byte-identical to an undisturbed run.
//
// Like internal/fault, every fault draw comes from a seeded generator
// advanced once per intercepted operation, so a failing soak iteration
// replays bit-for-bit from its seed.
//
// The package is a dependency leaf (stdlib only) so internal/ckpt — also
// a leaf — can write through it.
package iofault

import (
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// File is the writable-file surface WriteFile-style callers need:
// exactly what the temp-file + fsync + rename discipline uses.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface the simulator's infrastructure performs
// its durable I/O through. OS is the passthrough implementation; an
// *Injector wraps any FS with a deterministic fault schedule. Keeping
// the surface this narrow (exactly the operations the crash-safe write
// discipline uses) is what makes exhaustive fault coverage feasible.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory itself, making a preceding rename's
	// directory entry durable. Crash-safety contract: rename alone makes
	// the new name *visible*; only the parent-directory fsync makes it
	// *durable* across power failure. Every temp-file+rename writer in
	// this repo must call SyncDir after the rename.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems (and most non-Linux platforms) reject fsync on
		// a directory handle; visibility via rename is the best they
		// offer, so an unsupported sync is not a durability regression we
		// can act on.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EBADF) {
			return nil
		}
		return err
	}
	return nil
}

// ErrInjected marks every error manufactured by an Injector, so tests
// and degradation paths can tell injected failures from real ones.
// Match with errors.Is.
var ErrInjected = errors.New("iofault: injected fault")

// Options selects the fault classes and their per-operation rates. All
// probabilities are in [0,1] and are evaluated independently per
// intercepted operation from the seeded draw stream.
type Options struct {
	// Seed drives the deterministic fault schedule. Two injectors with
	// the same Seed and Options fail the same operations in the same
	// order.
	Seed uint64
	// WriteFail is the probability a file write fails with ENOSPC
	// (nothing written).
	WriteFail float64
	// TornWrite is the probability a file write persists only a prefix
	// before failing — the short-write/torn-write case the crash-safe
	// rename discipline must mask.
	TornWrite float64
	// SyncFail is the probability an fsync (file or directory) reports
	// EIO.
	SyncFail float64
	// RenameFail is the probability a rename fails with EIO, leaving the
	// temp file behind.
	RenameFail float64
	// ReadFail is the probability a whole-file read fails with EIO.
	ReadFail float64
	// CorruptRead is the probability a whole-file read succeeds but
	// returns data with one deterministic bit flipped — corruption at
	// rest surfacing at read time.
	CorruptRead float64
	// Slow is the probability any intercepted operation stalls for
	// SlowDelay of wall-clock time before proceeding.
	Slow      float64
	SlowDelay time.Duration
	// AcceptFail is the probability a listener accept fails
	// (non-temporary, so an http.Server.Serve loop exits — the obs
	// degradation path).
	AcceptFail float64
	// ConnWriteFail is the probability an accepted connection's write
	// fails mid-response.
	ConnWriteFail float64
	// Partition is the probability a connection is partitioned: after a
	// seed-chosen number of bytes (1..PartitionBytes, drawn per
	// connection) have crossed it in either direction, the connection is
	// hard-closed — the next read or write fails mid-frame with
	// ECONNRESET, exactly what a mid-stream network partition looks like
	// to each endpoint.
	Partition float64
	// PartitionBytes bounds the per-connection byte budget drawn for
	// partitioned connections (0 selects DefaultPartitionBytes).
	PartitionBytes uint64
}

// Enabled reports whether any fault class is active.
func (o Options) Enabled() bool {
	return o.WriteFail > 0 || o.TornWrite > 0 || o.SyncFail > 0 || o.RenameFail > 0 ||
		o.ReadFail > 0 || o.CorruptRead > 0 || o.Slow > 0 || o.AcceptFail > 0 ||
		o.ConnWriteFail > 0 || o.Partition > 0
}

// String renders the options in ParseSpec syntax.
func (o Options) String() string {
	var parts []string
	add := func(key string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", key, p))
		}
	}
	add("write", o.WriteFail)
	add("torn", o.TornWrite)
	add("sync", o.SyncFail)
	add("rename", o.RenameFail)
	add("read", o.ReadFail)
	add("corrupt", o.CorruptRead)
	if o.Slow > 0 {
		parts = append(parts, fmt.Sprintf("slow=%g:%s", o.Slow, o.SlowDelay))
	}
	add("accept", o.AcceptFail)
	add("connwrite", o.ConnWriteFail)
	if o.Partition > 0 {
		if o.PartitionBytes > 0 && o.PartitionBytes != DefaultPartitionBytes {
			parts = append(parts, fmt.Sprintf("partition=%g:%d", o.Partition, o.PartitionBytes))
		} else {
			parts = append(parts, fmt.Sprintf("partition=%g", o.Partition))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",") + fmt.Sprintf(",seed=%d", o.Seed)
}

// ParseSpec parses a comma-separated I/O fault specification, e.g.
// "write=0.1,torn=0.05,sync=0.1,rename=0.05,read=0.02,corrupt=0.02,
// slow=0.01:5ms,accept=0.5,connwrite=0.1,seed=42". An empty spec or
// "none" yields zero Options.
func ParseSpec(spec string) (Options, error) {
	var o Options
	o.SlowDelay = DefaultSlowDelay
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return o, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return Options{}, fmt.Errorf("iofault: %q is not key=value", part)
		}
		if key == "seed" {
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Options{}, fmt.Errorf("iofault: seed wants an unsigned integer, got %q", val)
			}
			o.Seed = n
			continue
		}
		if key == "partition" {
			probStr, bytesStr, hasBytes := strings.Cut(val, ":")
			p, err := parseProb("partition", probStr)
			if err != nil {
				return Options{}, err
			}
			o.Partition = p
			if hasBytes {
				n, err := strconv.ParseUint(bytesStr, 10, 64)
				if err != nil || n == 0 {
					return Options{}, fmt.Errorf("iofault: partition wants prob[:bytes], got %q", val)
				}
				o.PartitionBytes = n
			}
			continue
		}
		if key == "slow" {
			probStr, delayStr, hasDelay := strings.Cut(val, ":")
			p, err := parseProb("slow", probStr)
			if err != nil {
				return Options{}, err
			}
			o.Slow = p
			if hasDelay {
				d, err := time.ParseDuration(delayStr)
				if err != nil || d <= 0 {
					return Options{}, fmt.Errorf("iofault: slow wants prob[:duration], got %q", val)
				}
				o.SlowDelay = d
			}
			continue
		}
		p, err := parseProb(key, val)
		if err != nil {
			return Options{}, err
		}
		switch key {
		case "write":
			o.WriteFail = p
		case "torn":
			o.TornWrite = p
		case "sync":
			o.SyncFail = p
		case "rename":
			o.RenameFail = p
		case "read":
			o.ReadFail = p
		case "corrupt":
			o.CorruptRead = p
		case "accept":
			o.AcceptFail = p
		case "connwrite":
			o.ConnWriteFail = p
		default:
			return Options{}, fmt.Errorf("iofault: unknown fault class %q", key)
		}
	}
	return o, nil
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("iofault: %s wants a probability in [0,1], got %q", key, val)
	}
	return p, nil
}

// DefaultSlowDelay is the stall applied by slow-I/O faults when the spec
// does not name one.
const DefaultSlowDelay = 2 * time.Millisecond

// DefaultPartitionBytes is the byte-budget bound for partitioned
// connections when the spec does not name one: small enough that a
// partition lands within the handshake or the first few frames of a
// dispatch conversation.
const DefaultPartitionBytes = 4096

// Stats counts injected faults per class.
type Stats struct {
	WriteFails  uint64
	TornWrites  uint64
	SyncFails   uint64
	RenameFails uint64
	ReadFails   uint64
	Corrupted   uint64
	Slowed      uint64
	AcceptFails uint64
	ConnFails   uint64
	Partitions  uint64
	// Ops counts every intercepted operation, injected or not.
	Ops uint64
}

// Total sums the injected-fault counts.
func (s Stats) Total() uint64 {
	return s.WriteFails + s.TornWrites + s.SyncFails + s.RenameFails +
		s.ReadFails + s.Corrupted + s.Slowed + s.AcceptFails + s.ConnFails + s.Partitions
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("ops %d: write-fail %d torn %d sync-fail %d rename-fail %d read-fail %d corrupt %d slow %d accept-fail %d conn-fail %d partition %d",
		s.Ops, s.WriteFails, s.TornWrites, s.SyncFails, s.RenameFails, s.ReadFails, s.Corrupted, s.Slowed, s.AcceptFails, s.ConnFails, s.Partitions)
}

// Injector is an FS (and listener wrapper) that injects faults per a
// deterministic schedule. It is safe for concurrent use: campaign
// workers flush journals and save checkpoints from many goroutines, and
// the obs server accepts from its own.
type Injector struct {
	inner FS

	mu    sync.Mutex
	opt   Options
	state uint64 // splitmix64 stream, advanced once per draw
	stats Stats
}

// NewInjector wraps the real filesystem with the given fault schedule.
func NewInjector(opt Options) *Injector { return NewInjectorFS(OS, opt) }

// NewInjectorFS wraps an arbitrary inner FS (tests stack injectors over
// in-memory filesystems this way).
func NewInjectorFS(inner FS, opt Options) *Injector {
	if opt.SlowDelay <= 0 {
		opt.SlowDelay = DefaultSlowDelay
	}
	return &Injector{inner: inner, opt: opt, state: opt.Seed}
}

// Options returns the injector's fault schedule.
func (in *Injector) Options() Options {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.opt
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// splitmix64: tiny, well-distributed, and stdlib-free; one step per
// draw keeps the schedule a pure function of (seed, op index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d9d49bb6a68029
	return z ^ (z >> 31)
}

// draw advances the stream and reports whether a fault with probability
// p fires, bumping the class counter via hit. Callers hold no locks.
func (in *Injector) draw(p float64, hit func(*Stats)) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	in.state++
	v := splitmix64(in.state)
	fire := float64(v>>11)/float64(1<<53) < p
	if fire && hit != nil {
		hit(&in.stats)
	}
	in.mu.Unlock()
	return fire
}

// op is the common prelude of every intercepted operation: count it and
// apply the slow-I/O class.
func (in *Injector) op() {
	in.mu.Lock()
	in.stats.Ops++
	in.mu.Unlock()
	if in.draw(in.opt.Slow, func(s *Stats) { s.Slowed++ }) {
		time.Sleep(in.opt.SlowDelay)
	}
}

func injectedf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInjected}, args...)...)
}

// MkdirAll passes through (directory creation is not a fault class; the
// interesting failures are on the write/rename/sync path).
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	in.op()
	return in.inner.MkdirAll(path, perm)
}

// CreateTemp passes through but returns a fault-wrapped File.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	in.op()
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: in}, nil
}

// Rename injects EIO rename failures, leaving the source in place as a
// real failed rename would.
func (in *Injector) Rename(oldpath, newpath string) error {
	in.op()
	if in.draw(in.opt.RenameFail, func(s *Stats) { s.RenameFails++ }) {
		return injectedf("rename %s: %v", filepath.Base(oldpath), syscall.EIO)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	in.op()
	return in.inner.Remove(name)
}

func (in *Injector) RemoveAll(path string) error {
	in.op()
	return in.inner.RemoveAll(path)
}

// ReadFile injects whole-read EIO failures and corrupt-at-rest bit
// flips: the read succeeds but one deterministically chosen bit of the
// returned data is inverted, exactly what a rotted sector looks like to
// a checksum.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	in.op()
	if in.draw(in.opt.ReadFail, func(s *Stats) { s.ReadFails++ }) {
		return nil, injectedf("read %s: %v", filepath.Base(name), syscall.EIO)
	}
	data, err := in.inner.ReadFile(name)
	if err != nil {
		return data, err
	}
	if len(data) > 0 && in.draw(in.opt.CorruptRead, func(s *Stats) { s.Corrupted++ }) {
		in.mu.Lock()
		in.state++
		bit := splitmix64(in.state) % uint64(len(data)*8)
		in.mu.Unlock()
		data[bit/8] ^= 1 << (bit % 8)
	}
	return data, nil
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	in.op()
	return in.inner.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	in.op()
	return in.inner.Stat(name)
}

// SyncDir injects directory-fsync failures.
func (in *Injector) SyncDir(dir string) error {
	in.op()
	if in.draw(in.opt.SyncFail, func(s *Stats) { s.SyncFails++ }) {
		return injectedf("fsync dir %s: %v", dir, syscall.EIO)
	}
	return in.inner.SyncDir(dir)
}

// faultFile wraps a temp file with write/sync fault injection.
type faultFile struct {
	File
	in *Injector
}

// Write injects ENOSPC (nothing written) and torn writes (a prefix
// persisted, then failure) — the two shapes a full or dying disk
// produces.
func (f *faultFile) Write(p []byte) (int, error) {
	f.in.op()
	if f.in.draw(f.in.opt.WriteFail, func(s *Stats) { s.WriteFails++ }) {
		return 0, injectedf("write %s: %v", filepath.Base(f.Name()), syscall.ENOSPC)
	}
	if len(p) > 1 && f.in.draw(f.in.opt.TornWrite, func(s *Stats) { s.TornWrites++ }) {
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, injectedf("short write %s: %d of %d bytes: %v", filepath.Base(f.Name()), n, len(p), syscall.ENOSPC)
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	f.in.op()
	if f.in.draw(f.in.opt.SyncFail, func(s *Stats) { s.SyncFails++ }) {
		return injectedf("fsync %s: %v", filepath.Base(f.Name()), syscall.EIO)
	}
	return f.File.Sync()
}

// WrapListener wraps ln with accept/connection-write/partition fault
// injection. A nil injector (or one with no listener fault classes)
// returns ln unchanged.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	if in == nil {
		return ln
	}
	o := in.Options()
	if o.AcceptFail <= 0 && o.ConnWriteFail <= 0 && o.Partition <= 0 {
		return ln
	}
	return &faultListener{Listener: ln, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

// Accept injects non-temporary accept failures, which make an
// http.Server.Serve loop exit — the event the obs server's degradation
// policy must absorb.
func (l *faultListener) Accept() (net.Conn, error) {
	l.in.op()
	if l.in.draw(l.in.opt.AcceptFail, func(s *Stats) { s.AcceptFails++ }) {
		return nil, injectedf("accept: %v", syscall.ECONNABORTED)
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return c, err
	}
	return l.in.WrapConn(c), nil
}

// WrapConn wraps one connection with write-fail and partition fault
// injection. Dial-side consumers (a remote worker injecting its own
// network chaos) use this directly; WrapListener applies it to every
// accepted connection. Whether this connection partitions — and after
// how many bytes — is drawn once here, so the schedule stays a pure
// function of (seed, op index) regardless of subsequent traffic timing.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	fc := &faultConn{Conn: c, in: in}
	if in.draw(in.opt.Partition, nil) {
		in.mu.Lock()
		in.state++
		bound := in.opt.PartitionBytes
		if bound == 0 {
			bound = DefaultPartitionBytes
		}
		fc.budget = 1 + splitmix64(in.state)%bound
		in.mu.Unlock()
		fc.partitioned = true
	}
	return fc
}

type faultConn struct {
	net.Conn
	in *Injector

	// partitioned connections hard-close after budget bytes cross in
	// either direction; counted and budget guarded by cmu.
	partitioned bool
	cmu         sync.Mutex
	counted     uint64
	budget      uint64
	tripped     bool
}

// account charges n transferred bytes against a partitioned connection's
// budget and reports whether the partition fires now.
func (c *faultConn) account(n int) bool {
	if !c.partitioned {
		return false
	}
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.tripped {
		return true
	}
	c.counted += uint64(n)
	if c.counted >= c.budget {
		c.tripped = true
		c.in.mu.Lock()
		c.in.stats.Partitions++
		c.in.mu.Unlock()
		return true
	}
	return false
}

// dead reports whether the partition already fired.
func (c *faultConn) dead() bool {
	if !c.partitioned {
		return false
	}
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.tripped
}

// Read charges the partition budget; once it trips, the connection is
// closed and reads fail as a reset mid-stream.
func (c *faultConn) Read(p []byte) (int, error) {
	if c.dead() {
		return 0, injectedf("conn read: %v", syscall.ECONNRESET)
	}
	n, err := c.Conn.Read(p)
	if n > 0 && c.account(n) {
		c.Conn.Close()
		return n, injectedf("conn partitioned after %d bytes: %v", c.counted, syscall.ECONNRESET)
	}
	return n, err
}

// Write injects mid-response connection failures and charges the
// partition budget.
func (c *faultConn) Write(p []byte) (int, error) {
	if c.dead() {
		return 0, injectedf("conn write: %v", syscall.ECONNRESET)
	}
	if c.in.draw(c.in.opt.ConnWriteFail, func(s *Stats) { s.ConnFails++ }) {
		c.Conn.Close()
		return 0, injectedf("conn write: %v", syscall.ECONNRESET)
	}
	n, err := c.Conn.Write(p)
	if n > 0 && c.account(n) {
		c.Conn.Close()
		return n, injectedf("conn partitioned after %d bytes: %v", c.counted, syscall.ECONNRESET)
	}
	return n, err
}
