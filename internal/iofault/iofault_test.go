package iofault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeThrough exercises the temp-file+sync+rename+syncdir discipline
// through fsys, the way ckpt.WriteFile and the campaign journal do.
func writeThrough(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "f.bin")
	want := []byte("hello crash safety")
	if err := writeThrough(OS, path, want); err != nil {
		t.Fatalf("writeThrough: %v", err)
	}
	got, err := OS.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("round trip got %q want %q", got, want)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v %v", ents, err)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	opt := Options{Seed: 7, WriteFail: 0.3, RenameFail: 0.3, SyncFail: 0.3}
	run := func() []string {
		in := NewInjector(opt)
		dir := t.TempDir()
		var outcomes []string
		for i := 0; i < 50; i++ {
			err := writeThrough(in, filepath.Join(dir, "f.bin"), []byte(strings.Repeat("x", 64)))
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			case errors.Is(err, ErrInjected):
				outcomes = append(outcomes, "injected")
			default:
				t.Fatalf("unexpected real error: %v", err)
			}
		}
		return outcomes
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	var injected int
	for _, o := range a {
		if o == "injected" {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("want a mix of failures and successes at p=0.3, got %d/%d injected", injected, len(a))
	}
}

func TestInjectedErrorsMatchSentinel(t *testing.T) {
	in := NewInjector(Options{Seed: 1, WriteFail: 1})
	err := writeThrough(in, filepath.Join(t.TempDir(), "f"), []byte("data"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if in.Stats().WriteFails == 0 {
		t.Fatalf("write-fail counter not bumped: %+v", in.Stats())
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	in := NewInjector(Options{Seed: 3, TornWrite: 1})
	dir := t.TempDir()
	tmp, err := in.CreateTemp(dir, "torn*")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("ab", 32))
	_, err = tmp.Write(data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected torn write, got %v", err)
	}
	tmp.Close()
	got, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(data) {
		t.Fatalf("torn write persisted %d bytes, want a strict non-empty prefix of %d", len(got), len(data))
	}
}

func TestCorruptReadFlipsExactlyOneBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	want := []byte(strings.Repeat("payload!", 16))
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Options{Seed: 11, CorruptRead: 1})
	got, err := in.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range want {
		x := want[i] ^ got[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corrupt read flipped %d bits, want exactly 1", diffBits)
	}
	// The file at rest is untouched only in the sense that the injector
	// models read-time surfacing; the on-disk bytes stay valid.
	raw, _ := os.ReadFile(path)
	if string(raw) != string(want) {
		t.Fatalf("injector mutated the on-disk file")
	}
}

func TestSlowIOStalls(t *testing.T) {
	in := NewInjector(Options{Seed: 5, Slow: 1, SlowDelay: 20 * time.Millisecond})
	start := time.Now()
	in.Stat(t.TempDir())
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slow fault did not stall: %v", d)
	}
	if in.Stats().Slowed == 0 {
		t.Fatalf("slow counter not bumped")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "write=0.1,torn=0.05,sync=0.2,rename=0.1,read=0.02,corrupt=0.03,slow=0.01:5ms,accept=0.5,connwrite=0.1,seed=42"
	o, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if o.WriteFail != 0.1 || o.TornWrite != 0.05 || o.SyncFail != 0.2 || o.RenameFail != 0.1 ||
		o.ReadFail != 0.02 || o.CorruptRead != 0.03 || o.Slow != 0.01 || o.SlowDelay != 5*time.Millisecond ||
		o.AcceptFail != 0.5 || o.ConnWriteFail != 0.1 || o.Seed != 42 {
		t.Fatalf("parsed %+v", o)
	}
	if !o.Enabled() {
		t.Fatalf("Enabled() false for %+v", o)
	}
	// String renders back to a spec ParseSpec accepts.
	o2, err := ParseSpec(o.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", o.String(), err)
	}
	if o2 != o {
		t.Fatalf("round trip %+v != %+v", o2, o)
	}
	for _, bad := range []string{"write=2", "bogus=0.1", "slow=0.1:nope", "seed=-1", "torn"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if o, err := ParseSpec(""); err != nil || o.Enabled() {
		t.Fatalf("empty spec: %+v %v", o, err)
	}
}

func TestWrapListenerAcceptFailure(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	in := NewInjector(Options{Seed: 9, AcceptFail: 1})
	ln := in.WrapListener(base)
	if _, err := ln.Accept(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected accept failure, got %v", err)
	}
	if in.Stats().AcceptFails == 0 {
		t.Fatalf("accept-fail counter not bumped")
	}
	// No listener fault classes: the listener passes through untouched.
	quiet := NewInjector(Options{Seed: 9, WriteFail: 1})
	if got := quiet.WrapListener(base); got != base {
		t.Fatalf("WrapListener wrapped despite no listener fault classes")
	}
	var nilInj *Injector
	if got := nilInj.WrapListener(base); got != base {
		t.Fatalf("nil injector must pass the listener through")
	}
}

func TestStatsTotalAndString(t *testing.T) {
	in := NewInjector(Options{Seed: 2, WriteFail: 1})
	writeThrough(in, filepath.Join(t.TempDir(), "f"), []byte("x"))
	st := in.Stats()
	if st.Total() == 0 || st.Ops == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if !strings.Contains(st.String(), "write-fail") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestParseSpecPartition(t *testing.T) {
	o, err := ParseSpec("partition=0.5:128,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if o.Partition != 0.5 || o.PartitionBytes != 128 || o.Seed != 7 {
		t.Fatalf("parsed %+v", o)
	}
	if !o.Enabled() {
		t.Fatalf("Enabled() false for %+v", o)
	}
	// Without a byte bound the default applies at wrap time, and String
	// omits it.
	o2, err := ParseSpec("partition=1")
	if err != nil {
		t.Fatal(err)
	}
	if o2.Partition != 1 || o2.PartitionBytes != 0 {
		t.Fatalf("parsed %+v", o2)
	}
	if got := o2.String(); !strings.Contains(got, "partition=1") || strings.Contains(got, ":") {
		t.Fatalf("String() = %q", got)
	}
	// Round trip with explicit bytes.
	o3, err := ParseSpec(o.String())
	if err != nil || o3 != o {
		t.Fatalf("round trip %q: %+v vs %+v (%v)", o.String(), o3, o, err)
	}
	for _, bad := range []string{"partition=2", "partition=0.5:0", "partition=0.5:x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// pipeConns returns a wrapped server conn talking to a raw client conn
// over a real TCP loopback pair.
func pipeConns(t *testing.T, in *Injector) (server, client net.Conn) {
	t.Helper()
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	ln := in.WrapListener(base)
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			done <- nil
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", base.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	if server == nil {
		t.FailNow()
	}
	return server, client
}

func TestPartitionDropsConnAfterBudget(t *testing.T) {
	in := NewInjector(Options{Seed: 11, Partition: 1, PartitionBytes: 64})
	server, client := pipeConns(t, in)
	defer server.Close()
	defer client.Close()

	// Drive writes through the wrapped side until the partition trips.
	// The budget is in [1,64], so at most 64 one-byte writes.
	var tripErr error
	for i := 0; i < 65; i++ {
		if _, err := server.Write([]byte{'x'}); err != nil {
			tripErr = err
			break
		}
	}
	if tripErr == nil {
		t.Fatal("partition never fired within its byte bound")
	}
	if !errors.Is(tripErr, ErrInjected) {
		t.Fatalf("partition error not marked injected: %v", tripErr)
	}
	if in.Stats().Partitions != 1 {
		t.Fatalf("Partitions = %d, want 1", in.Stats().Partitions)
	}
	// The conn is hard-closed: subsequent I/O on the wrapped side fails
	// and the peer sees EOF/reset rather than a clean stream.
	if _, err := server.Write([]byte{'y'}); err == nil {
		t.Fatal("write after partition succeeded")
	}
	buf := make([]byte, 256)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := client.Read(buf); err != nil {
			break // EOF or RST — either way the peer observed the drop
		}
	}
}

func TestPartitionDeterministicBudget(t *testing.T) {
	// Two injectors with the same seed partition after the same byte
	// count.
	budget := func(seed uint64) uint64 {
		in := NewInjector(Options{Seed: seed, Partition: 1, PartitionBytes: 512})
		server, client := pipeConns(t, in)
		defer server.Close()
		defer client.Close()
		var sent uint64
		for i := 0; i < 1024; i++ {
			n, err := server.Write([]byte{'x'})
			sent += uint64(n)
			if err != nil {
				return sent
			}
		}
		t.Fatal("partition never fired")
		return 0
	}
	b1, b2 := budget(33), budget(33)
	if b1 != b2 {
		t.Fatalf("same seed, different partition points: %d vs %d", b1, b2)
	}
	if b3 := budget(34); b3 == b1 {
		t.Logf("note: different seeds coincided at %d bytes (possible, not fatal)", b3)
	}
}

func TestPartitionCountsReads(t *testing.T) {
	// The budget covers both directions: a read-heavy conn partitions
	// too.
	in := NewInjector(Options{Seed: 21, Partition: 1, PartitionBytes: 32})
	server, client := pipeConns(t, in)
	defer server.Close()
	defer client.Close()
	go func() {
		payload := bytes.Repeat([]byte{'r'}, 16)
		for i := 0; i < 16; i++ {
			if _, err := client.Write(payload); err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 8)
	var gotErr error
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 64; i++ {
		if _, err := server.Read(buf); err != nil {
			gotErr = err
			break
		}
	}
	if gotErr == nil {
		t.Fatal("read-side partition never fired")
	}
	if !errors.Is(gotErr, ErrInjected) {
		t.Fatalf("read partition error not marked injected: %v", gotErr)
	}
}

func TestWrapConnNilAndClean(t *testing.T) {
	var nilInj *Injector
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := nilInj.WrapConn(c1); got != c1 {
		t.Fatal("nil injector must pass the conn through")
	}
	// Partition prob 0: wrapped conn passes traffic untouched.
	in := NewInjector(Options{Seed: 3})
	wc := in.WrapConn(c1)
	go c2.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(wc, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("clean wrapped conn: %q %v", buf, err)
	}
}
