package memctrl

import (
	"camouflage/internal/ckpt"
	"camouflage/internal/mem"
	"camouflage/internal/sim"
)

// Snapshot serializes the transaction queue, the in-flight completion
// list, per-core priority elevations, counters and — when the active
// scheduling policy carries state (FS slot tracking, bandwidth-reserve
// token buckets) — the scheduler. Queue and in-flight requests are owned
// here, so they are serialized by value. The lazy occupancy accounting is
// folded through the last observed cycle first, so the serialized
// counters are exactly what the old eager per-tick accounting wrote.
func (c *Controller) Snapshot(e *ckpt.Encoder) {
	c.fold(c.lastSeen)
	mem.SnapshotRequests(e, c.queue)
	e.Len(len(c.inflight))
	for _, cp := range c.inflight {
		e.U64(uint64(cp.at))
		cp.req.Snapshot(e)
	}
	e.Len(len(c.prio))
	for i := range c.prio {
		e.Int(c.prio[i])
		e.U64(uint64(c.prioUntil[i]))
	}
	e.U64(c.stats.Accepted)
	e.U64(c.stats.Rejected)
	e.U64(c.stats.Issued)
	e.U64(c.stats.Completed)
	e.Len(len(c.stats.PerCoreServed))
	for _, n := range c.stats.PerCoreServed {
		e.U64(n)
	}
	e.U64(c.stats.QueueOccupancySum)
	e.U64(c.stats.Cycles)
	st, ok := c.scheduler.(ckpt.Stater)
	e.Bool(ok)
	if ok {
		st.Snapshot(e)
	}
}

// Restore implements ckpt.Stater.
func (c *Controller) Restore(d *ckpt.Decoder) error {
	var err error
	if c.queue, err = mem.RestoreRequests(d); err != nil {
		return err
	}
	n := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	c.inflight = c.inflight[:0]
	for i := 0; i < n; i++ {
		at := sim.Cycle(d.U64())
		req := &mem.Request{}
		if err := req.Restore(d); err != nil {
			return err
		}
		c.inflight = append(c.inflight, completion{at: at, req: req})
	}
	n = d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(c.prio) {
		return ckpt.Mismatch("memctrl: %d cores, checkpoint has %d", len(c.prio), n)
	}
	for i := range c.prio {
		c.prio[i] = d.Int()
		c.prioUntil[i] = sim.Cycle(d.U64())
	}
	c.stats.Accepted = d.U64()
	c.stats.Rejected = d.U64()
	c.stats.Issued = d.U64()
	c.stats.Completed = d.U64()
	n = d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(c.stats.PerCoreServed) {
		return ckpt.Mismatch("memctrl: %d served counters, checkpoint has %d", len(c.stats.PerCoreServed), n)
	}
	for i := range c.stats.PerCoreServed {
		c.stats.PerCoreServed[i] = d.U64()
	}
	c.stats.QueueOccupancySum = d.U64()
	c.stats.Cycles = d.U64()
	// Checkpoints land on supervision boundaries after every cycle up to
	// the snapshot point has been observed, so the folded Cycles counter
	// equals the snapshot cycle — re-seed the lazy-fold watermarks there.
	c.accounted = sim.Cycle(c.stats.Cycles)
	c.lastSeen = sim.Cycle(c.stats.Cycles)
	// The pick gate's per-bank demand counts are derived from the queue;
	// nextPickAt stays zero so the first tick rescans. The gate only
	// elides scans that would find nothing, so resuming with a cleared
	// memo is outcome-identical to the continuous run.
	c.rebuildBankQueued()
	has := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	st, ok := c.scheduler.(ckpt.Stater)
	if has != ok {
		return ckpt.Mismatch("memctrl: scheduler statefulness mismatch (checkpoint %v, live %v)", has, ok)
	}
	if ok {
		return st.Restore(d)
	}
	return nil
}

// Snapshot serializes the one-issue-per-slot tracking.
func (fs *FixedService) Snapshot(e *ckpt.Encoder) {
	e.U64(fs.lastSlotIssued)
	e.Bool(fs.issuedInSlot)
}

// Restore implements ckpt.Stater.
func (fs *FixedService) Restore(d *ckpt.Decoder) error {
	fs.lastSlotIssued = d.U64()
	fs.issuedInSlot = d.Bool()
	return d.Err()
}

// Snapshot serializes the per-core token buckets and refill clock.
func (br *BandwidthReserve) Snapshot(e *ckpt.Encoder) {
	e.Len(len(br.tokens))
	for _, t := range br.tokens {
		e.F64(t)
	}
	e.U64(uint64(br.lastRefill))
}

// Restore implements ckpt.Stater.
func (br *BandwidthReserve) Restore(d *ckpt.Decoder) error {
	n := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(br.tokens) {
		return ckpt.Mismatch("memctrl: %d token buckets, checkpoint has %d", len(br.tokens), n)
	}
	for i := range br.tokens {
		br.tokens[i] = d.F64()
	}
	br.lastRefill = sim.Cycle(d.U64())
	return d.Err()
}
