package memctrl

import (
	"testing"

	"camouflage/internal/dram"
	"camouflage/internal/mem"
	"camouflage/internal/sim"
)

func testSetup(sched Scheduler, partition bool) (*Controller, *dram.Channel) {
	g := dram.DefaultGeometry()
	tm := dram.DDR3_1333()
	tm.TREFI = 0
	amap := dram.NewAddrMap(g)
	if partition {
		amap.SetBankPartitions(dram.EqualBankPartitions(4, 8))
	}
	ch := dram.NewChannel(tm, g, amap)
	return NewController(ch, sched, 0, 4), ch
}

// sink is an egress port collecting completions.
type sink struct {
	got  []*mem.Request
	full bool
}

func (s *sink) TrySend(_ sim.Cycle, req *mem.Request) bool {
	if s.full {
		return false
	}
	s.got = append(s.got, req)
	return true
}

func req(id uint64, core int, addr uint64) *mem.Request {
	return &mem.Request{ID: id, Core: core, Addr: addr, Op: mem.Read}
}

func runTicks(c *Controller, ch *dram.Channel, from, to sim.Cycle) {
	for now := from; now <= to; now++ {
		ch.Tick(now)
		c.Tick(now)
	}
}

func TestControllerServicesRequest(t *testing.T) {
	c, ch := testSetup(FRFCFS{}, false)
	s := &sink{}
	c.SetEgress(0, s)
	if !c.TrySend(1, req(1, 0, 0)) {
		t.Fatal("empty controller refused request")
	}
	runTicks(c, ch, 1, 500)
	if len(s.got) != 1 || s.got[0].ID != 1 {
		t.Fatalf("completions %v", s.got)
	}
	if s.got[0].ReadyAt == 0 || s.got[0].IssuedDRAM == 0 {
		t.Fatal("timestamps not stamped")
	}
	st := c.Stats()
	if st.Accepted != 1 || st.Issued != 1 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueDepthBounds(t *testing.T) {
	c, _ := testSetup(FRFCFS{}, false)
	for i := 0; i < DefaultQueueDepth; i++ {
		if !c.TrySend(1, req(uint64(i), 0, uint64(i)*64)) {
			t.Fatalf("queue refused request %d under depth", i)
		}
	}
	if c.TrySend(1, req(99, 0, 99*64)) {
		t.Fatal("queue accepted request over depth")
	}
	if c.Stats().Rejected != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c, ch := testSetup(FRFCFS{}, false)
	s0, s1 := &sink{}, &sink{}
	c.SetEgress(0, s0)
	c.SetEgress(1, s1)
	// Open a row in bank 0 via core 0.
	c.TrySend(1, req(1, 0, 0))
	runTicks(c, ch, 1, 300)
	// Now queue a conflict (same bank, different row) ahead of a hit.
	c.TrySend(301, req(2, 1, 8*8192)) // bank 0, other row
	c.TrySend(301, req(3, 0, 128))    // bank 0, open row: hit
	runTicks(c, ch, 301, 1200)
	if len(s0.got) != 2 || len(s1.got) != 1 {
		t.Fatalf("completions: core0 %d, core1 %d", len(s0.got), len(s1.got))
	}
	// The hit (ID 3) must have been issued before the older conflict.
	if s0.got[1].IssuedDRAM > s1.got[0].IssuedDRAM {
		t.Fatal("FR-FCFS did not prefer the row hit")
	}
}

func TestPriorityElevationWins(t *testing.T) {
	c, ch := testSetup(FRFCFS{}, false)
	s0, s1 := &sink{}, &sink{}
	c.SetEgress(0, s0)
	c.SetEgress(1, s1)
	// Same bank so the scheduler must choose an order.
	c.TrySend(1, req(1, 0, 0))
	c.TrySend(1, req(2, 1, 64))
	c.Elevate(1, 100, 10_000)
	runTicks(c, ch, 1, 800)
	if len(s0.got) != 1 || len(s1.got) != 1 {
		t.Fatal("not all requests completed")
	}
	if s1.got[0].IssuedDRAM > s0.got[0].IssuedDRAM {
		t.Fatal("elevated core did not issue first")
	}
}

func TestPriorityExpires(t *testing.T) {
	c, _ := testSetup(FRFCFS{}, false)
	c.Elevate(1, 100, 5)
	if c.Priority(1) != 100 {
		t.Fatal("elevation not applied")
	}
	c.Tick(5)
	if c.Priority(1) != 0 {
		t.Fatal("elevation did not expire")
	}
	// Out-of-range cores are ignored without panicking.
	c.Elevate(-1, 5, 10)
	c.Elevate(99, 5, 10)
	if c.Priority(-1) != 0 || c.Priority(99) != 0 {
		t.Fatal("out-of-range priority nonzero")
	}
}

func TestTPOnlyActiveDomainIssues(t *testing.T) {
	tp := NewTemporalPartitioning(512, 4)
	c, ch := testSetup(tp, false)
	sinks := make([]*sink, 4)
	for i := range sinks {
		sinks[i] = &sink{}
		c.SetEgress(i, sinks[i])
	}
	// All four cores queue a request at cycle 1 (during domain 0's turn).
	for core := 0; core < 4; core++ {
		c.TrySend(1, req(uint64(core+1), core, uint64(core)*64+16*8192))
	}
	runTicks(c, ch, 1, 4*512+500)
	for core, s := range sinks {
		if len(s.got) != 1 {
			t.Fatalf("core %d got %d completions", core, len(s.got))
		}
		issued := s.got[0].IssuedDRAM
		domain := tp.ActiveDomain(issued)
		if domain != core {
			t.Fatalf("core %d issued during domain %d's turn (cycle %d)", core, domain, issued)
		}
	}
}

func TestTPDeadTimeBlocksIssue(t *testing.T) {
	tp := NewTemporalPartitioning(512, 4)
	c, ch := testSetup(tp, false)
	s := &sink{}
	c.SetEgress(0, s)
	// Queue just inside the dead time of domain 0's first turn (the
	// boundary cycle turnEnd-DeadTime itself may still issue, since that
	// transaction completes exactly at the turn boundary).
	deadStart := sim.Cycle(512) - tp.DeadTime + 1
	c.TrySend(deadStart, req(1, 0, 0))
	runTicks(c, ch, deadStart, 5000)
	if len(s.got) != 1 {
		t.Fatal("request never serviced")
	}
	// It must have waited for domain 0's next turn.
	if s.got[0].IssuedDRAM < 4*512 {
		t.Fatalf("issued at %d, inside dead time or wrong turn", s.got[0].IssuedDRAM)
	}
}

func TestFSOneIssuePerSlot(t *testing.T) {
	fs := NewFixedService(4)
	c, ch := testSetup(fs, true)
	s := &sink{}
	c.SetEgress(0, s)
	// Core 0 floods; service must be paced at one per 4*slot.
	for i := 0; i < 8; i++ {
		c.TrySend(1, req(uint64(i+1), 0, uint64(i)*64))
	}
	runTicks(c, ch, 1, 8*4*fs.SlotLength+2000)
	if len(s.got) != 8 {
		t.Fatalf("completed %d of 8", len(s.got))
	}
	for i := 1; i < len(s.got); i++ {
		gap := s.got[i].IssuedDRAM - s.got[i-1].IssuedDRAM
		if gap < 3*fs.SlotLength {
			t.Fatalf("issues %d apart, want >= %d (one per rotation)", gap, 3*fs.SlotLength)
		}
	}
}

func TestFSServiceIndependentOfOtherCores(t *testing.T) {
	// Core 0's issue times with and without a flooding neighbour must
	// match exactly — FS's whole point.
	issueTimes := func(withNeighbour bool) []sim.Cycle {
		fs := NewFixedService(4)
		c, ch := testSetup(fs, true)
		s0, s1 := &sink{}, &sink{}
		c.SetEgress(0, s0)
		c.SetEgress(1, s1)
		for i := 0; i < 6; i++ {
			c.TrySend(1, req(uint64(i+1), 0, uint64(i)*64))
		}
		if withNeighbour {
			for i := 0; i < 24; i++ {
				c.TrySend(1, req(uint64(100+i), 1, uint64(i)*64))
			}
		}
		runTicks(c, ch, 1, 30*4*fs.SlotLength)
		var out []sim.Cycle
		for _, r := range s0.got {
			out = append(out, r.IssuedDRAM)
		}
		return out
	}
	alone := issueTimes(false)
	shared := issueTimes(true)
	if len(alone) != len(shared) {
		t.Fatalf("different completion counts: %d vs %d", len(alone), len(shared))
	}
	for i := range alone {
		if alone[i] != shared[i] {
			t.Fatalf("issue %d moved: alone %d, shared %d — FS leaked interference", i, alone[i], shared[i])
		}
	}
}

func TestEgressBackpressureHoldsCompletion(t *testing.T) {
	c, ch := testSetup(FRFCFS{}, false)
	s := &sink{full: true}
	c.SetEgress(0, s)
	c.TrySend(1, req(1, 0, 0))
	runTicks(c, ch, 1, 500)
	if len(s.got) != 0 {
		t.Fatal("completion delivered despite backpressure")
	}
	if c.Stats().Completed != 0 {
		t.Fatal("completion counted despite backpressure")
	}
	s.full = false
	runTicks(c, ch, 501, 600)
	if len(s.got) != 1 {
		t.Fatal("completion lost after backpressure lifted")
	}
}

func TestEgressBackpressureDoesNotBlockOtherCores(t *testing.T) {
	c, ch := testSetup(FRFCFS{}, false)
	blocked, open := &sink{full: true}, &sink{}
	c.SetEgress(0, blocked)
	c.SetEgress(1, open)
	c.TrySend(1, req(1, 0, 0))      // bank 0, will block at egress
	c.TrySend(1, req(2, 1, 8192*2)) // bank 2
	runTicks(c, ch, 1, 800)
	if len(open.got) != 1 {
		t.Fatal("unblocked core's completion stuck behind a blocked one")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (FRFCFS{}).Name() != "FR-FCFS" {
		t.Fatal("FRFCFS name")
	}
	if NewTemporalPartitioning(512, 4).Name() != "TP" {
		t.Fatal("TP name")
	}
	if NewFixedService(4).Name() != "FS" {
		t.Fatal("FS name")
	}
}

func TestMeanOccupancy(t *testing.T) {
	var s ControllerStats
	if s.MeanOccupancy() != 0 {
		t.Fatal("empty occupancy not 0")
	}
	s.Cycles = 10
	s.QueueOccupancySum = 25
	if s.MeanOccupancy() != 2.5 {
		t.Fatalf("occupancy %v", s.MeanOccupancy())
	}
}

func TestBandwidthReserveCapsRate(t *testing.T) {
	br := NewBandwidthReserve(2, 100)
	c, ch := testSetup(br, false)
	s := &sink{}
	c.SetEgress(0, s)
	for i := 0; i < 20; i++ {
		c.TrySend(1, req(uint64(i+1), 0, uint64(i)*64))
	}
	runTicks(c, ch, 1, 1000)
	// Burst allowance (4) plus ~10 refills over 1000 cycles.
	if len(s.got) > 15 {
		t.Fatalf("reservation let %d through in 1000 cycles at 1/100", len(s.got))
	}
	if len(s.got) < 8 {
		t.Fatalf("reservation starved the core: %d", len(s.got))
	}
}

func TestBandwidthReserveIndependentBudgets(t *testing.T) {
	br := NewBandwidthReserve(2, 100)
	c, ch := testSetup(br, false)
	s0, s1 := &sink{}, &sink{}
	c.SetEgress(0, s0)
	c.SetEgress(1, s1)
	// Core 0 floods; core 1 sends a trickle to another bank. Core 1's
	// service must not be affected by core 0's demand.
	for i := 0; i < 30; i++ {
		c.TrySend(1, req(uint64(i+1), 0, uint64(i)*64))
	}
	c.TrySend(1, req(100, 1, 3*8192))
	runTicks(c, ch, 1, 1500)
	if len(s1.got) != 1 {
		t.Fatalf("reserved core starved: %d completions", len(s1.got))
	}
}

func TestBandwidthReserveName(t *testing.T) {
	if NewBandwidthReserve(4, 100).Name() != "BWReserve" {
		t.Fatal("name")
	}
}
