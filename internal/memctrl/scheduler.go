// Package memctrl implements the memory controller: a bounded transaction
// queue in front of the DRAM channel plus pluggable scheduling policies.
// The policies are the paper's baselines and building blocks:
//
//   - FR-FCFS: first-ready, first-come-first-serve with per-core priority
//     elevation (used by MISE highest-priority epochs and by Response
//     Camouflage's acceleration warnings),
//   - Temporal Partitioning (TP, Wang et al. HPCA'14): fixed time turns per
//     security domain with dead time,
//   - Fixed Service (FS, Shafiee et al. MICRO'15): constant per-thread
//     service slots, usually combined with bank partitioning in the
//     address map.
package memctrl

import (
	"camouflage/internal/dram"
	"camouflage/internal/mem"
	"camouflage/internal/sim"
)

// Scheduler selects which queued transaction to issue next.
type Scheduler interface {
	// Pick returns the index within q of the transaction to issue at
	// cycle now, or -1 if none may issue. q is in arrival order. ch
	// exposes bank readiness and row state. prio maps core index to its
	// current priority level (higher wins).
	Pick(now sim.Cycle, q []*mem.Request, ch *dram.Channel, prio []int) int
	// Name identifies the policy in reports.
	Name() string
}

// FRFCFS is the baseline first-ready FCFS scheduler with priority
// elevation: among issuable transactions it picks the highest priority
// level, then prefers row hits, then the oldest.
type FRFCFS struct{}

// Name implements Scheduler.
func (FRFCFS) Name() string { return "FR-FCFS" }

// Pick implements Scheduler.
func (FRFCFS) Pick(now sim.Cycle, q []*mem.Request, ch *dram.Channel, prio []int) int {
	best := -1
	bestPrio := 0
	bestHit := false
	for i, req := range q {
		can, hit := ch.IssueState(now, req)
		if !can {
			continue
		}
		p := corePriority(prio, req.Core)
		if best == -1 || p > bestPrio || (p == bestPrio && hit && !bestHit) {
			best, bestPrio, bestHit = i, p, hit
		}
	}
	return best
}

// TemporalPartitioning divides time into fixed-length turns, one security
// domain at a time. Only the active domain's transactions may issue, and
// only if they can complete before the turn's dead time, which prevents a
// transaction from leaking into the next domain's turn.
type TemporalPartitioning struct {
	// TurnLength is the turn duration in cycles.
	TurnLength sim.Cycle
	// DeadTime is the tail of each turn in which nothing may issue
	// (sized to the worst-case transaction latency).
	DeadTime sim.Cycle
	// Domains is the number of security domains; domain = core % Domains.
	Domains int
}

// NewTemporalPartitioning returns a TP scheduler with the paper-typical
// shape: turn length in cycles, dead time covering a worst-case row
// conflict, and one domain per core.
func NewTemporalPartitioning(turn sim.Cycle, domains int) *TemporalPartitioning {
	t := dram.DDR3_1333()
	dead := t.TRAS + t.TRP + t.TRCD + t.TCAS + t.TBurst
	return &TemporalPartitioning{TurnLength: turn, DeadTime: dead, Domains: domains}
}

// Name implements Scheduler.
func (tp *TemporalPartitioning) Name() string { return "TP" }

// ActiveDomain returns the security domain whose turn covers cycle now.
func (tp *TemporalPartitioning) ActiveDomain(now sim.Cycle) int {
	return int(now / tp.TurnLength % sim.Cycle(tp.Domains))
}

// Pick implements Scheduler.
func (tp *TemporalPartitioning) Pick(now sim.Cycle, q []*mem.Request, ch *dram.Channel, _ []int) int {
	domain := tp.ActiveDomain(now)
	turnEnd := (now/tp.TurnLength + 1) * tp.TurnLength
	if tp.DeadTime > 0 && now+tp.DeadTime > turnEnd {
		return -1 // inside dead time
	}
	best := -1
	bestHit := false
	for i, req := range q {
		if req.Core%tp.Domains != domain {
			continue
		}
		can, hit := ch.IssueState(now, req)
		if !can {
			continue
		}
		if best == -1 || (hit && !bestHit) {
			best, bestHit = i, hit
		}
	}
	return best
}

// FixedService grants each core a service slot in strict rotation; a core
// may issue at most one transaction per slot, whether or not it has
// demand, so each thread sees a constant injection rate independent of its
// neighbours. The paper pairs FS with bank partitioning (configured on the
// dram.AddrMap) so row-buffer state is also per-core.
type FixedService struct {
	// SlotLength is each core's service slot in cycles.
	SlotLength sim.Cycle
	// Cores is the number of rotating slots.
	Cores int

	// lastSlotIssued remembers the most recent slot index in which a
	// transaction was issued, enforcing one issue per slot.
	lastSlotIssued uint64
	issuedInSlot   bool
}

// NewFixedService returns an FS scheduler with slots sized to a
// closed-row access (activate + column command + burst): the constant
// per-thread service rate FS guarantees must hold even when every access
// opens a new row in the thread's bank partition.
func NewFixedService(cores int) *FixedService {
	t := dram.DDR3_1333()
	slot := t.TRCD + t.TCAS + t.TBurst
	return &FixedService{SlotLength: slot, Cores: cores}
}

// Name implements Scheduler.
func (fs *FixedService) Name() string { return "FS" }

// Pick implements Scheduler.
func (fs *FixedService) Pick(now sim.Cycle, q []*mem.Request, ch *dram.Channel, _ []int) int {
	slot := uint64(now / fs.SlotLength)
	core := int(slot % uint64(fs.Cores))
	if slot != fs.lastSlotIssued {
		fs.lastSlotIssued = slot
		fs.issuedInSlot = false
	}
	if fs.issuedInSlot {
		return -1
	}
	best := -1
	bestHit := false
	for i, req := range q {
		if req.Core != core {
			continue
		}
		can, hit := ch.IssueState(now, req)
		if !can {
			continue
		}
		if best == -1 || (hit && !bestHit) {
			best, bestHit = i, hit
		}
	}
	if best >= 0 {
		fs.issuedInSlot = true
	}
	return best
}

// BandwidthReserve implements the bandwidth-reservation design the paper
// cites as reference [37] (Gundu et al., HASP'14): each core holds a token
// bucket refilled at a fixed reserved rate and a transaction may issue
// only when its core has a token. Cores cannot exceed their reservation,
// so one core's service rate is independent of the others' demand — but
// unlike Camouflage, unused reservations are simply wasted and request
// timing within the budget still leaks.
type BandwidthReserve struct {
	// RefillInterval is the cycles per token granted to each core.
	RefillInterval sim.Cycle
	// Burst caps accumulated tokens per core.
	Burst float64

	tokens     []float64
	lastRefill sim.Cycle
}

// NewBandwidthReserve returns a reservation scheduler granting each of
// cores one transaction per refillInterval cycles, with a small burst
// allowance.
func NewBandwidthReserve(cores int, refillInterval sim.Cycle) *BandwidthReserve {
	if refillInterval == 0 {
		refillInterval = 1
	}
	return &BandwidthReserve{
		RefillInterval: refillInterval,
		Burst:          4,
		tokens:         make([]float64, cores),
	}
}

// Name implements Scheduler.
func (br *BandwidthReserve) Name() string { return "BWReserve" }

// Pick implements Scheduler.
func (br *BandwidthReserve) Pick(now sim.Cycle, q []*mem.Request, ch *dram.Channel, _ []int) int {
	if now > br.lastRefill {
		grant := float64(now-br.lastRefill) / float64(br.RefillInterval)
		for i := range br.tokens {
			br.tokens[i] += grant
			if br.tokens[i] > br.Burst {
				br.tokens[i] = br.Burst
			}
		}
		br.lastRefill = now
	}
	best := -1
	bestHit := false
	for i, req := range q {
		if req.Core < 0 || req.Core >= len(br.tokens) || br.tokens[req.Core] < 1 {
			continue
		}
		can, hit := ch.IssueState(now, req)
		if !can {
			continue
		}
		if best == -1 || (hit && !bestHit) {
			best, bestHit = i, hit
		}
	}
	if best >= 0 {
		br.tokens[q[best].Core]--
	}
	return best
}

func corePriority(prio []int, core int) int {
	if core >= 0 && core < len(prio) {
		return prio[core]
	}
	return 0
}
