package memctrl

import (
	"sort"

	"camouflage/internal/dram"
	"camouflage/internal/mem"
	"camouflage/internal/sim"
)

// DefaultQueueDepth is the paper's 32-entry transaction queue.
const DefaultQueueDepth = 32

// Controller is the memory controller: it accepts transactions from the
// request NoC into a bounded queue, schedules them onto the DRAM channel
// with its configured policy, tracks in-flight data bursts, and emits
// completed transactions to per-core egress ports (where Response
// Camouflage sits).
type Controller struct {
	channel   *dram.Channel
	scheduler Scheduler
	depth     int

	queue []*mem.Request

	// inflight holds issued transactions ordered by completion cycle.
	inflight []completion

	// egress[core] receives completed transactions for that core.
	egress []mem.RespPort

	// prio holds per-core priority levels for FR-FCFS elevation.
	prio []int
	// prioUntil expires temporary elevation (RespC warnings).
	prioUntil []sim.Cycle

	stats ControllerStats
}

type completion struct {
	at  sim.Cycle
	req *mem.Request
}

// ControllerStats aggregates queue and service counters.
type ControllerStats struct {
	Accepted  uint64
	Rejected  uint64 // offered while the queue was full
	Issued    uint64
	Completed uint64
	// PerCoreServed counts completed transactions per core.
	PerCoreServed []uint64
	// QueueOccupancySum accumulates queue length every cycle for mean
	// occupancy reporting.
	QueueOccupancySum uint64
	Cycles            uint64
}

// MeanOccupancy returns the average queue depth over the run.
func (s ControllerStats) MeanOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.QueueOccupancySum) / float64(s.Cycles)
}

// NewController returns a controller over channel with the given scheduler
// and queue depth (0 means DefaultQueueDepth), serving cores cores.
func NewController(channel *dram.Channel, sched Scheduler, depth, cores int) *Controller {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &Controller{
		channel:   channel,
		scheduler: sched,
		depth:     depth,
		egress:    make([]mem.RespPort, cores),
		prio:      make([]int, cores),
		prioUntil: make([]sim.Cycle, cores),
		stats:     ControllerStats{PerCoreServed: make([]uint64, cores)},
	}
}

// SetEgress connects core's completion port (the response shaper or the
// response NoC input).
func (c *Controller) SetEgress(core int, port mem.RespPort) { c.egress[core] = port }

// Scheduler returns the active policy.
func (c *Controller) Scheduler() Scheduler { return c.scheduler }

// Stats returns a copy of the controller's counters.
func (c *Controller) Stats() ControllerStats {
	s := c.stats
	s.PerCoreServed = append([]uint64(nil), c.stats.PerCoreServed...)
	return s
}

// QueueLen returns the current transaction queue depth.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Outstanding returns the number of transactions inside the controller:
// queued plus issued-but-not-retired. The forward-progress watchdog folds
// it into the system's total in-flight count.
func (c *Controller) Outstanding() int { return len(c.queue) + len(c.inflight) }

// TrySend implements mem.ReqPort: the request NoC delivers transactions
// here. It returns false when the transaction queue is full.
func (c *Controller) TrySend(now sim.Cycle, req *mem.Request) bool {
	if len(c.queue) >= c.depth {
		c.stats.Rejected++
		return false
	}
	req.ArrivedMC = now
	c.queue = append(c.queue, req)
	c.stats.Accepted++
	return true
}

// Elevate raises core's scheduling priority to level until cycle until.
// Response Camouflage uses it to accelerate a core whose response rate has
// fallen below its target distribution; MISE uses it for
// highest-priority-mode profiling epochs.
func (c *Controller) Elevate(core, level int, until sim.Cycle) {
	if core < 0 || core >= len(c.prio) {
		return
	}
	c.prio[core] = level
	c.prioUntil[core] = until
}

// Priority returns core's current priority level.
func (c *Controller) Priority(core int) int {
	if core < 0 || core >= len(c.prio) {
		return 0
	}
	return c.prio[core]
}

// NextWake implements sim.NextWaker. A non-empty queue consults the
// scheduler every cycle (policies like temporal partitioning are
// time-dependent, so no cheap bound exists). Otherwise the controller
// next acts at the earliest in-flight completion or the earliest
// pending priority expiry — skipping past an expiry would leave a stale
// elevated priority visible in a checkpoint that a stepped run would
// have cleared.
func (c *Controller) NextWake(now sim.Cycle) sim.Cycle {
	if len(c.queue) > 0 {
		return now + 1
	}
	w := sim.NeverWake
	if len(c.inflight) > 0 {
		at := c.inflight[0].at
		if at <= now {
			return now + 1 // egress-blocked completion retrying
		}
		w = at
	}
	for i := range c.prio {
		if c.prio[i] != 0 {
			u := c.prioUntil[i]
			if u <= now {
				return now + 1
			}
			if u < w {
				w = u
			}
		}
	}
	return w
}

// Skip implements sim.Skipper: bulk-apply the per-cycle occupancy
// accounting an idle tick performs.
func (c *Controller) Skip(from, to sim.Cycle) {
	n := uint64(to - from + 1)
	c.stats.Cycles += n
	c.stats.QueueOccupancySum += n * uint64(len(c.queue))
}

// Tick advances the controller one cycle: expire priority elevations,
// retire finished bursts to egress, then issue at most one transaction.
func (c *Controller) Tick(now sim.Cycle) {
	c.stats.Cycles++
	c.stats.QueueOccupancySum += uint64(len(c.queue))

	for i := range c.prio {
		if c.prio[i] != 0 && now >= c.prioUntil[i] {
			c.prio[i] = 0
		}
	}

	// Retire completions in order. Egress backpressure (a full response
	// shaper queue) leaves that completion pending and its bank busy —
	// the "prevent overflow on the return channel" coupling the paper
	// describes — but other cores' completions retire past it, so one
	// shaped core cannot head-of-line block its neighbours.
	for i := 0; i < len(c.inflight); {
		cp := c.inflight[i]
		if cp.at > now {
			break
		}
		port := c.egress[cp.req.Core]
		if port != nil && !port.TrySend(now, cp.req) {
			i++
			continue
		}
		c.channel.Complete(cp.req)
		c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
		c.stats.Completed++
		if cp.req.Core >= 0 && cp.req.Core < len(c.stats.PerCoreServed) {
			c.stats.PerCoreServed[cp.req.Core]++
		}
	}

	if len(c.queue) == 0 {
		return
	}
	pick := c.scheduler.Pick(now, c.queue, c.channel, c.prio)
	if pick < 0 {
		return
	}
	req := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	req.IssuedDRAM = now
	done := c.channel.Issue(now, req)
	req.ReadyAt = done
	c.insertCompletion(completion{at: done, req: req})
	c.stats.Issued++
}

func (c *Controller) insertCompletion(cp completion) {
	i := sort.Search(len(c.inflight), func(i int) bool { return c.inflight[i].at > cp.at })
	c.inflight = append(c.inflight, completion{})
	copy(c.inflight[i+1:], c.inflight[i:])
	c.inflight[i] = cp
}
