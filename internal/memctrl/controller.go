package memctrl

import (
	"sort"

	"camouflage/internal/dram"
	"camouflage/internal/mem"
	"camouflage/internal/sim"
)

// DefaultQueueDepth is the paper's 32-entry transaction queue.
const DefaultQueueDepth = 32

// Controller is the memory controller: it accepts transactions from the
// request NoC into a bounded queue, schedules them onto the DRAM channel
// with its configured policy, tracks in-flight data bursts, and emits
// completed transactions to per-core egress ports (where Response
// Camouflage sits).
type Controller struct {
	channel   *dram.Channel
	scheduler Scheduler
	depth     int

	queue []*mem.Request

	// inflight holds issued transactions ordered by completion cycle.
	inflight []completion

	// egress[core] receives completed transactions for that core.
	egress []mem.RespPort

	// prio holds per-core priority levels for FR-FCFS elevation.
	prio []int
	// prioUntil expires temporary elevation (RespC warnings).
	prioUntil []sim.Cycle

	// kernel/handler route priority expiry through typed kernel events
	// when the controller runs under a kernel (AttachKernel). Standalone
	// controllers — unit tests drive Tick directly — fall back to a
	// per-tick expiry scan. Neither field is checkpoint state: expiry
	// events ride in the kernel's own snapshot.
	kernel  *sim.Kernel
	handler sim.HandlerID

	stats ControllerStats
	// accounted is the cycle through which Cycles/QueueOccupancySum have
	// been folded; lastSeen is the latest cycle the controller observed
	// (tick or skip). Queue length only changes inside TrySend and Tick,
	// so occupancy-time integrates lazily: each mutation first folds the
	// constant-length span since accounted, and the busy loop never
	// touches the shared counters. Derived bookkeeping, not state —
	// Snapshot folds before writing so the serialized stats are exact.
	accounted sim.Cycle
	lastSeen  sim.Cycle

	// bankQueued counts queued transactions per (rank, bank), indexed
	// rank*BanksPerRank+bank; nextPickAt is the earliest cycle at which a
	// scheduler scan could find an issuable transaction. Together they
	// gate the per-request Pick scan: in saturation issues are data-bus
	// paced (one per burst), so most cycles no bank can accept a command
	// and the verdict is memoized until the computed wake or until an
	// arrival or completion changes bank demand. The gate is
	// policy-independent — it fires only when zero queued transactions
	// are bank-issuable, in which case every Scheduler returns -1.
	// Derived bookkeeping, not checkpoint state: restore rebuilds
	// bankQueued from the queue and leaves nextPickAt at zero (rescan).
	bankQueued   []int32
	banksPerRank int
	nextPickAt   sim.Cycle
}

// evPrioExpire is the typed kernel event that clears an expired priority
// elevation; arg carries the core index.
const evPrioExpire sim.EventKind = 1

// AttachKernel registers the controller as a typed-event handler, turning
// priority expiry from a per-tick scan into scheduled events. Systems call
// it once at assembly time, before any Elevate.
func (c *Controller) AttachKernel(k *sim.Kernel) {
	c.kernel = k
	c.handler = k.RegisterHandler(c)
}

// HandleEvent implements sim.EventHandler. A stale expiry (the core was
// re-elevated to a later deadline after this event was scheduled) is
// recognized by the deadline check and ignored.
func (c *Controller) HandleEvent(now sim.Cycle, kind sim.EventKind, arg uint64) {
	if kind != evPrioExpire {
		return
	}
	core := int(arg)
	if core >= 0 && core < len(c.prio) && c.prio[core] != 0 && now >= c.prioUntil[core] {
		c.prio[core] = 0
	}
}

// fold integrates queue-occupancy time for the constant-length span
// (accounted, through]. Callers must fold before any queue mutation and
// before exposing stats.
func (c *Controller) fold(through sim.Cycle) {
	if through <= c.accounted {
		return
	}
	n := uint64(through - c.accounted)
	c.stats.Cycles += n
	c.stats.QueueOccupancySum += n * uint64(len(c.queue))
	c.accounted = through
}

type completion struct {
	at  sim.Cycle
	req *mem.Request
}

// ControllerStats aggregates queue and service counters.
type ControllerStats struct {
	Accepted  uint64
	Rejected  uint64 // offered while the queue was full
	Issued    uint64
	Completed uint64
	// PerCoreServed counts completed transactions per core.
	PerCoreServed []uint64
	// QueueOccupancySum accumulates queue length every cycle for mean
	// occupancy reporting.
	QueueOccupancySum uint64
	Cycles            uint64
}

// MeanOccupancy returns the average queue depth over the run.
func (s ControllerStats) MeanOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.QueueOccupancySum) / float64(s.Cycles)
}

// NewController returns a controller over channel with the given scheduler
// and queue depth (0 means DefaultQueueDepth), serving cores cores.
func NewController(channel *dram.Channel, sched Scheduler, depth, cores int) *Controller {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	g := channel.Geometry()
	return &Controller{
		channel:    channel,
		scheduler:  sched,
		depth:      depth,
		egress:     make([]mem.RespPort, cores),
		prio:       make([]int, cores),
		prioUntil:  make([]sim.Cycle, cores),
		stats:        ControllerStats{PerCoreServed: make([]uint64, cores)},
		bankQueued:   make([]int32, g.RanksPerChannel*g.BanksPerRank),
		banksPerRank: g.BanksPerRank,
	}
}

// bankSlot returns req's index into bankQueued, decoding (memoized) if
// needed.
func (c *Controller) bankSlot(req *mem.Request) int {
	if !req.Dec.OK {
		c.channel.AddrMap().DecodeReq(req)
	}
	return req.Dec.Rank*c.banksPerRank + req.Dec.Bank
}

// rebuildBankQueued recomputes the per-bank demand counts from the queue.
// Checkpoint restore calls it: the counts are derived state.
func (c *Controller) rebuildBankQueued() {
	for i := range c.bankQueued {
		c.bankQueued[i] = 0
	}
	for _, req := range c.queue {
		c.bankQueued[c.bankSlot(req)]++
	}
	c.nextPickAt = 0
}

// SetEgress connects core's completion port (the response shaper or the
// response NoC input).
func (c *Controller) SetEgress(core int, port mem.RespPort) { c.egress[core] = port }

// Scheduler returns the active policy.
func (c *Controller) Scheduler() Scheduler { return c.scheduler }

// Stats returns a copy of the controller's counters, folding the lazy
// occupancy accounting up to the last observed cycle first.
func (c *Controller) Stats() ControllerStats {
	c.fold(c.lastSeen)
	s := c.stats
	s.PerCoreServed = append([]uint64(nil), c.stats.PerCoreServed...)
	return s
}

// QueueLen returns the current transaction queue depth.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Outstanding returns the number of transactions inside the controller:
// queued plus issued-but-not-retired. The forward-progress watchdog folds
// it into the system's total in-flight count.
func (c *Controller) Outstanding() int { return len(c.queue) + len(c.inflight) }

// ForEachRequest visits every request the controller holds: queued
// transactions and issued ones awaiting completion. Checkpoint restore
// uses it to rebuild MSHR aliasing.
func (c *Controller) ForEachRequest(fn func(*mem.Request)) {
	for _, req := range c.queue {
		fn(req)
	}
	for _, cp := range c.inflight {
		fn(cp.req)
	}
}

// TrySend implements mem.ReqPort: the request NoC delivers transactions
// here. It returns false when the transaction queue is full.
func (c *Controller) TrySend(now sim.Cycle, req *mem.Request) bool {
	if len(c.queue) >= c.depth {
		c.stats.Rejected++
		return false
	}
	// The queue length is about to change: fold the occupancy integral
	// through the previous cycle. Cycle now itself is sampled at this
	// cycle's issue (or a later fold), after all arrivals have landed —
	// exactly what the eager per-tick sample observed.
	if now > 0 {
		c.fold(now - 1)
	}
	req.ArrivedMC = now
	c.queue = append(c.queue, req)
	c.stats.Accepted++
	c.bankQueued[c.bankSlot(req)]++
	// The arrival may be issuable before the memoized gate wake: pull the
	// wake forward to its bank's readiness (NeverWake while in flight —
	// that bank's completion resets the gate below).
	if at := c.channel.BankReadyAt(req); at < c.nextPickAt {
		c.nextPickAt = at
	}
	return true
}

// Elevate raises core's scheduling priority to level until cycle until.
// Response Camouflage uses it to accelerate a core whose response rate has
// fallen below its target distribution; MISE uses it for
// highest-priority-mode profiling epochs.
func (c *Controller) Elevate(core, level int, until sim.Cycle) {
	if core < 0 || core >= len(c.prio) {
		return
	}
	c.prio[core] = level
	c.prioUntil[core] = until
	if c.kernel != nil {
		// Schedule the expiry instead of scanning every tick. Events fire
		// at the start of their cycle, before any component ticks — the
		// same point the per-tick scan cleared expired levels. An
		// already-expired deadline still gets a next-cycle event so the
		// clear happens where the scan would have performed it.
		at := until
		if now := c.kernel.Now(); at <= now {
			at = now + 1
		}
		c.kernel.ScheduleEvent(at, c.handler, evPrioExpire, uint64(core))
	}
}

// Priority returns core's current priority level.
func (c *Controller) Priority(core int) int {
	if core < 0 || core >= len(c.prio) {
		return 0
	}
	return c.prio[core]
}

// NextWake implements sim.NextWaker. A non-empty queue consults the
// scheduler every cycle (policies like temporal partitioning are
// time-dependent, so no cheap bound exists). Otherwise the controller
// next acts at the earliest in-flight completion or the earliest
// pending priority expiry — skipping past an expiry would leave a stale
// elevated priority visible in a checkpoint that a stepped run would
// have cleared.
func (c *Controller) NextWake(now sim.Cycle) sim.Cycle {
	if len(c.queue) > 0 {
		return now + 1
	}
	w := sim.NeverWake
	if len(c.inflight) > 0 {
		at := c.inflight[0].at
		if at <= now {
			return now + 1 // egress-blocked completion retrying
		}
		w = at
	}
	if c.kernel == nil {
		// Standalone mode expires priorities inside Tick, so pending
		// deadlines bound the skip. Under a kernel the scheduled expiry
		// events bound it instead (the kernel never jumps past an event).
		for i := range c.prio {
			if c.prio[i] != 0 {
				u := c.prioUntil[i]
				if u <= now {
					return now + 1
				}
				if u < w {
					w = u
				}
			}
		}
	}
	return w
}

// Skip implements sim.Skipper: the queue is untouched across a skipped
// span, so only the lazy-fold watermark advances — the occupancy integral
// for the span is folded at the next mutation or Stats call.
func (c *Controller) Skip(from, to sim.Cycle) {
	c.lastSeen = to
}

// Tick advances the controller one cycle: expire priority elevations
// (standalone mode only — attached controllers get typed expiry events),
// retire finished bursts to egress, then issue at most one transaction.
func (c *Controller) Tick(now sim.Cycle) {
	c.lastSeen = now

	if c.kernel == nil {
		for i := range c.prio {
			if c.prio[i] != 0 && now >= c.prioUntil[i] {
				c.prio[i] = 0
			}
		}
	}

	// Retire completions in order. Egress backpressure (a full response
	// shaper queue) leaves that completion pending and its bank busy —
	// the "prevent overflow on the return channel" coupling the paper
	// describes — but other cores' completions retire past it, so one
	// shaped core cannot head-of-line block its neighbours.
	for i := 0; i < len(c.inflight); {
		cp := c.inflight[i]
		if cp.at > now {
			break
		}
		port := c.egress[cp.req.Core]
		if port != nil && !port.TrySend(now, cp.req) {
			i++
			continue
		}
		c.channel.Complete(cp.req)
		// The freed bank may unblock a queued transaction earlier than
		// the memoized gate wake.
		if c.bankQueued[c.bankSlot(cp.req)] > 0 {
			if at := c.channel.BankReadyAt(cp.req); at < c.nextPickAt {
				c.nextPickAt = at
			}
		}
		c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
		c.stats.Completed++
		if cp.req.Core >= 0 && cp.req.Core < len(c.stats.PerCoreServed) {
			c.stats.PerCoreServed[cp.req.Core]++
		}
	}

	if len(c.queue) == 0 {
		return
	}
	// Policy-independent pre-gate: when no queued transaction's bank can
	// accept a command, every scheduler's Pick returns -1, so skip the
	// per-request scan and memoize the earliest cycle that could change.
	if now < c.nextPickAt {
		return
	}
	can, wake := c.channel.EarliestDemandIssue(now, c.bankQueued)
	if !can {
		c.nextPickAt = wake
		return
	}
	pick := c.scheduler.Pick(now, c.queue, c.channel, c.prio)
	if pick < 0 {
		return
	}
	c.fold(now) // queue length changes below; sample this cycle first
	req := c.queue[pick]
	c.bankQueued[c.bankSlot(req)]--
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	req.IssuedDRAM = now
	done := c.channel.Issue(now, req)
	req.ReadyAt = done
	c.insertCompletion(completion{at: done, req: req})
	c.stats.Issued++
}

func (c *Controller) insertCompletion(cp completion) {
	i := sort.Search(len(c.inflight), func(i int) bool { return c.inflight[i].at > cp.at })
	c.inflight = append(c.inflight, completion{})
	copy(c.inflight[i+1:], c.inflight[i:])
	c.inflight[i] = cp
}
