// Package mise implements the slowdown-estimation model of MISE
// (Subramanian et al., HPCA 2013), which the paper's online genetic
// algorithm uses as its optimization objective. MISE estimates an
// application's slowdown in a shared memory system without running it
// alone:
//
//	slowdown = (1 − α) + α · (service rate at highest priority / shared service rate)
//
// where α is the fraction of cycles the application stalls on memory. The
// highest-priority service rate is measured online by periodically giving
// the application top scheduling priority for one epoch.
package mise

import "camouflage/internal/sim"

// HPMPriority is the scheduling priority used for highest-priority-mode
// profiling epochs; it dominates the response shaper's warning elevations.
const HPMPriority = 1 << 20

// Sample is one epoch's measurement for one core.
type Sample struct {
	// Alpha is the memory-stall cycle fraction over the epoch.
	Alpha float64
	// ServiceRate is completed memory requests per cycle over the epoch.
	ServiceRate float64
}

// Slowdown combines a highest-priority-mode sample with a shared-mode
// sample per the MISE formula. A zero shared service rate with memory
// stalls present reports the HPM/ε worst case bounded to maxSlowdown.
func Slowdown(hpm, shared Sample) float64 {
	const maxSlowdown = 100
	alpha := shared.Alpha
	if alpha <= 0 {
		return 1
	}
	if shared.ServiceRate <= 0 {
		if hpm.ServiceRate <= 0 {
			return 1
		}
		return maxSlowdown
	}
	s := (1 - alpha) + alpha*(hpm.ServiceRate/shared.ServiceRate)
	if s < 1 {
		// A shared epoch can transiently beat the highest-priority
		// profile (epoch noise, phase changes); estimates below 1 are
		// artifacts, and floored so the optimizer does not chase them.
		return 1
	}
	if s > maxSlowdown {
		return maxSlowdown
	}
	return s
}

// Meter measures epoch samples for one core from cumulative counters. The
// caller feeds it counter snapshots at epoch boundaries.
type Meter struct {
	lastCycles    sim.Cycle
	lastStall     sim.Cycle
	lastCompleted uint64
}

// Begin snapshots the counters at the start of an epoch.
func (m *Meter) Begin(cycles, stall sim.Cycle, completed uint64) {
	m.lastCycles = cycles
	m.lastStall = stall
	m.lastCompleted = completed
}

// End computes the epoch sample from the counters at the end of the epoch.
func (m *Meter) End(cycles, stall sim.Cycle, completed uint64) Sample {
	dc := cycles - m.lastCycles
	if dc == 0 {
		return Sample{}
	}
	return Sample{
		Alpha:       float64(stall-m.lastStall) / float64(dc),
		ServiceRate: float64(completed-m.lastCompleted) / float64(dc),
	}
}

// AverageSlowdown returns the mean of per-core slowdowns — the
// multi-program objective the paper's GA minimizes (Σ slowdown_i / n).
func AverageSlowdown(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		return 0
	}
	var sum float64
	for _, s := range slowdowns {
		sum += s
	}
	return sum / float64(len(slowdowns))
}
