package mise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlowdownNoMemoryStalls(t *testing.T) {
	hpm := Sample{Alpha: 0, ServiceRate: 0.1}
	shared := Sample{Alpha: 0, ServiceRate: 0.05}
	if s := Slowdown(hpm, shared); s != 1 {
		t.Fatalf("compute-bound slowdown %v, want 1", s)
	}
}

func TestSlowdownFormula(t *testing.T) {
	hpm := Sample{ServiceRate: 0.10}
	shared := Sample{Alpha: 0.5, ServiceRate: 0.05}
	// (1-0.5) + 0.5*(0.10/0.05) = 0.5 + 1.0 = 1.5
	if s := Slowdown(hpm, shared); math.Abs(s-1.5) > 1e-12 {
		t.Fatalf("slowdown %v, want 1.5", s)
	}
}

func TestSlowdownFlooredAtOne(t *testing.T) {
	hpm := Sample{ServiceRate: 0.05}
	shared := Sample{Alpha: 0.5, ServiceRate: 0.10} // shared faster: noise
	if s := Slowdown(hpm, shared); s != 1 {
		t.Fatalf("noisy speedup not floored: %v", s)
	}
}

func TestSlowdownStarvedShared(t *testing.T) {
	hpm := Sample{ServiceRate: 0.1}
	shared := Sample{Alpha: 0.9, ServiceRate: 0}
	if s := Slowdown(hpm, shared); s != 100 {
		t.Fatalf("starved slowdown %v, want the 100 cap", s)
	}
	both := Slowdown(Sample{}, Sample{Alpha: 0.9})
	if both != 1 {
		t.Fatalf("both-zero rates: %v, want 1", both)
	}
}

func TestSlowdownCapped(t *testing.T) {
	hpm := Sample{ServiceRate: 1000}
	shared := Sample{Alpha: 1, ServiceRate: 0.001}
	if s := Slowdown(hpm, shared); s != 100 {
		t.Fatalf("slowdown %v, want cap 100", s)
	}
}

func TestSlowdownRangeProperty(t *testing.T) {
	check := func(a, h, s uint16) bool {
		alpha := float64(a%101) / 100
		hpm := Sample{ServiceRate: float64(h%1000) / 1000}
		shared := Sample{Alpha: alpha, ServiceRate: float64(s%1000) / 1000}
		v := Slowdown(hpm, shared)
		return v >= 1 && v <= 100
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Begin(1000, 200, 50)
	s := m.End(2000, 700, 150)
	if math.Abs(s.Alpha-0.5) > 1e-12 {
		t.Fatalf("alpha %v, want 0.5", s.Alpha)
	}
	if math.Abs(s.ServiceRate-0.1) > 1e-12 {
		t.Fatalf("rate %v, want 0.1", s.ServiceRate)
	}
	// Zero-length epoch.
	m.Begin(5, 1, 1)
	if z := m.End(5, 1, 1); z.Alpha != 0 || z.ServiceRate != 0 {
		t.Fatalf("zero epoch sample %+v", z)
	}
}

func TestAverageSlowdown(t *testing.T) {
	if a := AverageSlowdown([]float64{1, 2, 3}); a != 2 {
		t.Fatalf("average %v", a)
	}
	if AverageSlowdown(nil) != 0 {
		t.Fatal("empty average nonzero")
	}
}
