package fault

import (
	"camouflage/internal/dram"
	"camouflage/internal/sim"
)

// PerturbTiming returns a copy of t with the activate-path parameters
// illegally shortened: tRCD, tRRD and tFAW each shrink by a random amount
// up to roughly half. The channel then schedules column commands and
// activates earlier than the reference protocol allows, which the DRAM
// protocol checker (validating against the *unperturbed* timing) flags.
// The perturbed timing still passes dram.Timing.Validate — every
// parameter stays positive — so the fault is invisible to
// construction-time checks and only a runtime checker can catch it.
func (in *Injector) PerturbTiming(t dram.Timing) dram.Timing {
	if !in.opt.Timing {
		return t
	}
	cut := func(v sim.Cycle) sim.Cycle {
		if v <= 1 {
			return v
		}
		v -= 1 + sim.Cycle(in.rng.Uint64n(uint64(v)/2+1))
		if v < 1 {
			v = 1
		}
		return v
	}
	t.TRCD = cut(t.TRCD)
	t.TRRD = cut(t.TRRD)
	t.TFAW = cut(t.TFAW)
	return t
}
