package fault

import (
	"camouflage/internal/sim"
	"camouflage/internal/trace"
)

// CorruptSource wraps a workload trace source and corrupts entries with
// the injector's TraceProb: a corrupted entry gets a random address bit
// flip, its op toggled, or its gap perturbed. This models a buggy or
// hostile workload generator; the interesting question it answers is
// whether the *shaped* distribution survives, since the shaper's whole
// contract is that the bus-visible traffic is independent of what the
// application actually does.
type CorruptSource struct {
	src trace.Source
	in  *Injector
}

// Corrupt wraps src with the injector's trace-corruption fault. When
// TraceProb is zero the source is returned unwrapped.
func (in *Injector) Corrupt(src trace.Source) trace.Source {
	if in.opt.TraceProb <= 0 {
		return src
	}
	return &CorruptSource{src: src, in: in}
}

// Next implements trace.Source.
func (c *CorruptSource) Next() (trace.Entry, bool) {
	e, ok := c.src.Next()
	if !ok || !c.in.rng.Bool(c.in.opt.TraceProb) {
		return e, ok
	}
	c.in.stats.Corrupted++
	switch c.in.rng.Intn(3) {
	case 0:
		// Flip one bit somewhere in the usable address range.
		e.Addr ^= 1 << c.in.rng.Intn(32)
	case 1:
		e.Write = !e.Write
	default:
		// Perturb the compute gap: halve or double it.
		if c.in.rng.Bool(0.5) {
			e.Gap /= 2
		} else {
			e.Gap *= 2
		}
	}
	return e, true
}

// SetNow implements trace.Clocked by forwarding to the wrapped source
// when it is clocked.
func (c *CorruptSource) SetNow(now sim.Cycle) {
	if clocked, ok := c.src.(trace.Clocked); ok {
		clocked.SetNow(now)
	}
}
