package fault

import (
	"testing"

	"camouflage/internal/dram"
	"camouflage/internal/mem"
	"camouflage/internal/noc"
	"camouflage/internal/sim"
	"camouflage/internal/trace"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    Options
		wantErr bool
	}{
		{spec: "", want: Options{}},
		{spec: "none", want: Options{}},
		{spec: "drop=0.001", want: Options{DropProb: 0.001}},
		{spec: "dup=0.5", want: Options{DupProb: 0.5}},
		{spec: "delay=0.01:64", want: Options{DelayProb: 0.01, DelayCycles: 64}},
		{spec: "delay=0.01", want: Options{DelayProb: 0.01, DelayCycles: DefaultDelayCycles}},
		{spec: "trace=0.02", want: Options{TraceProb: 0.02}},
		{spec: "timing", want: Options{Timing: true}},
		{
			spec: "drop=0.001,dup=0.0005,delay=0.01:32,trace=0.02,timing",
			want: Options{DropProb: 0.001, DupProb: 0.0005, DelayProb: 0.01, DelayCycles: 32, TraceProb: 0.02, Timing: true},
		},
		{spec: "drop=2", wantErr: true},
		{spec: "drop=x", wantErr: true},
		{spec: "delay=0.1:0", wantErr: true},
		{spec: "bogus=1", wantErr: true},
		{spec: "timing=1", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): no error, got %+v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestOptionsStringRoundTrips(t *testing.T) {
	o := Options{DropProb: 0.001, DelayProb: 0.01, DelayCycles: 64, Timing: true}
	back, err := ParseSpec(o.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", o.String(), err)
	}
	if back != o {
		t.Errorf("round trip %q → %+v, want %+v", o.String(), back, o)
	}
	if (Options{}).String() != "none" {
		t.Errorf("zero options render as %q, want none", (Options{}).String())
	}
}

func TestHookInjectsAtConfiguredRates(t *testing.T) {
	in := NewInjector(Options{DropProb: 0.1, DupProb: 0.1, DelayProb: 0.1, DelayCycles: 16}, sim.NewRNG(42))
	hook := in.Hook()
	if hook == nil {
		t.Fatal("Hook() = nil with NoC faults enabled")
	}
	const n = 20000
	var drops, dups, delays int
	req := &mem.Request{}
	for i := 0; i < n; i++ {
		action, extra := hook(sim.Cycle(i), req)
		switch action {
		case noc.FaultDrop:
			drops++
		case noc.FaultDuplicate:
			dups++
		case noc.FaultDelay:
			delays++
			if extra != 16 {
				t.Fatalf("delay fault extra = %d, want 16", extra)
			}
		}
	}
	// Drop fires at 10%; dup at 10% of the remainder; delay at 10% of that.
	assertNear := func(name string, got, want int) {
		t.Helper()
		if diff := got - want; diff < -want/4 || diff > want/4 {
			t.Errorf("%s = %d, want about %d", name, got, want)
		}
	}
	assertNear("drops", drops, n/10)
	assertNear("dups", dups, n*9/100)
	assertNear("delays", delays, n*81/1000)
	st := in.Stats()
	if int(st.Dropped) != drops || int(st.Duplicated) != dups || int(st.Delayed) != delays {
		t.Errorf("stats %+v disagree with observed %d/%d/%d", st, drops, dups, delays)
	}
}

func TestHookNilWhenNoNoCFaults(t *testing.T) {
	in := NewInjector(Options{TraceProb: 0.5, Timing: true}, sim.NewRNG(1))
	if in.Hook() != nil {
		t.Error("Hook() non-nil with only trace/timing faults")
	}
}

func TestInjectionIsDeterministic(t *testing.T) {
	run := func() []noc.FaultAction {
		in := NewInjector(Options{DropProb: 0.05, DupProb: 0.05}, sim.NewRNG(7))
		hook := in.Hook()
		out := make([]noc.FaultAction, 0, 1000)
		req := &mem.Request{}
		for i := 0; i < 1000; i++ {
			a, _ := hook(sim.Cycle(i), req)
			out = append(out, a)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injection diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCorruptSourceMutatesEntries(t *testing.T) {
	base := make([]trace.Entry, 5000)
	for i := range base {
		base[i] = trace.Entry{Gap: 10, Addr: uint64(i) * 64}
	}
	in := NewInjector(Options{TraceProb: 0.2}, sim.NewRNG(9))
	src := in.Corrupt(trace.NewSliceSource(base))
	changed := 0
	for i := 0; ; i++ {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e != base[i] {
			changed++
		}
	}
	if in.Stats().Corrupted == 0 {
		t.Fatal("no entries corrupted at 20% rate")
	}
	// Gap perturbation of Gap=10 always changes the entry; address flips
	// and op toggles always change it too, so changed tracks Corrupted.
	if changed == 0 || uint64(changed) != in.Stats().Corrupted {
		t.Errorf("changed %d entries, stats say %d", changed, in.Stats().Corrupted)
	}
	if got := float64(changed) / float64(len(base)); got < 0.1 || got > 0.3 {
		t.Errorf("corruption rate %.3f, want about 0.2", got)
	}
}

func TestCorruptPassthroughWhenDisabled(t *testing.T) {
	in := NewInjector(Options{}, sim.NewRNG(1))
	src := trace.NewSliceSource([]trace.Entry{{Gap: 1}})
	if in.Corrupt(src) != trace.Source(src) {
		t.Error("Corrupt wrapped the source with TraceProb=0")
	}
}

func TestPerturbTimingShrinksAndStaysValid(t *testing.T) {
	ref := dram.DDR3_1333()
	in := NewInjector(Options{Timing: true}, sim.NewRNG(3))
	p := in.PerturbTiming(ref)
	if p.TRCD >= ref.TRCD || p.TRRD >= ref.TRRD || p.TFAW >= ref.TFAW {
		t.Errorf("perturbed timing not shortened: TRCD %d→%d TRRD %d→%d TFAW %d→%d",
			ref.TRCD, p.TRCD, ref.TRRD, p.TRRD, ref.TFAW, p.TFAW)
	}
	if p.TRCD < 1 || p.TRRD < 1 || p.TFAW < 1 {
		t.Errorf("perturbed timing went non-positive: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("perturbed timing fails Validate: %v", err)
	}
	// Other parameters untouched.
	if p.TCAS != ref.TCAS || p.TRP != ref.TRP || p.TRAS != ref.TRAS {
		t.Errorf("unrelated parameters changed: %+v vs %+v", p, ref)
	}
	// Disabled: identity.
	off := NewInjector(Options{}, sim.NewRNG(3))
	if off.PerturbTiming(ref) != ref {
		t.Error("PerturbTiming changed timing with Timing=false")
	}
}
