// Package fault implements deterministic fault injection for the
// Camouflage simulator. Faults are drawn from the simulation's seeded
// random source, so a failing run replays bit-for-bit from its seed — the
// property that makes an injected failure debuggable at all.
//
// Four fault classes cover the paths the invariant checkers guard
// (package check): dropping, delaying and duplicating transactions inside
// the NoC links; corrupting workload trace entries; and perturbing DRAM
// timing parameters. The robustness experiment drives each class and
// shows either that a checker catches it or that the shaped-traffic
// guarantee (the Figure 11 distribution match) survives it.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"camouflage/internal/mem"
	"camouflage/internal/noc"
	"camouflage/internal/sim"
)

// Options selects the fault classes and their rates.
type Options struct {
	// DropProb is the per-transaction probability a NoC link loses it.
	DropProb float64
	// DupProb is the per-transaction probability a NoC link duplicates it.
	DupProb float64
	// DelayProb is the per-transaction probability of an extra stall of
	// DelayCycles inside the link.
	DelayProb   float64
	DelayCycles sim.Cycle
	// TraceProb is the per-entry probability of corrupting a workload
	// trace entry (address bit flips, op toggles, gap perturbation).
	TraceProb float64
	// Timing perturbs the DRAM timing parameters (illegally fast tRCD,
	// tRP and tFAW), producing command schedules the protocol checker
	// rejects against the reference timing.
	Timing bool
}

// Enabled reports whether any fault class is active.
func (o Options) Enabled() bool {
	return o.DropProb > 0 || o.DupProb > 0 || o.DelayProb > 0 || o.TraceProb > 0 || o.Timing
}

// NoCEnabled reports whether any link-level fault class is active.
func (o Options) NoCEnabled() bool {
	return o.DropProb > 0 || o.DupProb > 0 || o.DelayProb > 0
}

// String renders the options in ParseSpec syntax.
func (o Options) String() string {
	var parts []string
	if o.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", o.DropProb))
	}
	if o.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", o.DupProb))
	}
	if o.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g:%d", o.DelayProb, o.DelayCycles))
	}
	if o.TraceProb > 0 {
		parts = append(parts, fmt.Sprintf("trace=%g", o.TraceProb))
	}
	if o.Timing {
		parts = append(parts, "timing")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault specification, e.g.
// "drop=0.001,dup=0.0005,delay=0.01:64,trace=0.02,timing". An empty spec
// or "none" yields zero Options.
func ParseSpec(spec string) (Options, error) {
	var o Options
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return o, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "timing" {
			o.Timing = true
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return Options{}, fmt.Errorf("fault: %q is not key=value (or \"timing\")", part)
		}
		switch key {
		case "drop", "dup", "trace":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Options{}, fmt.Errorf("fault: %s wants a probability in [0,1], got %q", key, val)
			}
			switch key {
			case "drop":
				o.DropProb = p
			case "dup":
				o.DupProb = p
			case "trace":
				o.TraceProb = p
			}
		case "delay":
			probStr, cyclesStr, hasCycles := strings.Cut(val, ":")
			p, err := strconv.ParseFloat(probStr, 64)
			if err != nil || p < 0 || p > 1 {
				return Options{}, fmt.Errorf("fault: delay wants prob[:cycles], got %q", val)
			}
			o.DelayProb = p
			o.DelayCycles = DefaultDelayCycles
			if hasCycles {
				n, err := strconv.ParseUint(cyclesStr, 10, 32)
				if err != nil || n == 0 {
					return Options{}, fmt.Errorf("fault: delay cycles must be a positive integer, got %q", cyclesStr)
				}
				o.DelayCycles = sim.Cycle(n)
			}
		default:
			return Options{}, fmt.Errorf("fault: unknown class %q (want drop, dup, delay, trace or timing)", key)
		}
	}
	return o, nil
}

// DefaultDelayCycles is the extra stall applied by delay faults when the
// spec gives no explicit duration.
const DefaultDelayCycles sim.Cycle = 64

// Stats counts injected faults.
type Stats struct {
	Dropped    uint64
	Delayed    uint64
	Duplicated uint64
	Corrupted  uint64
}

// Injector turns Options into concrete fault hooks, drawing all
// randomness from one forked RNG so injection is deterministic per seed.
type Injector struct {
	opt Options
	rng *sim.RNG

	stats Stats
}

// NewInjector returns an injector using rng (typically kernel.RNG().Fork()).
func NewInjector(opt Options, rng *sim.RNG) *Injector {
	return &Injector{opt: opt, rng: rng}
}

// Options returns the active fault configuration.
func (in *Injector) Options() Options { return in.opt }

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// Hook returns a noc.FaultHook implementing the link-level fault classes,
// or nil when none is enabled. Real and fake transactions are faulted
// alike — on the wire they are indistinguishable, and a fault model that
// spared fakes would be dishonest about the shaped distribution.
func (in *Injector) Hook() noc.FaultHook {
	if !in.opt.NoCEnabled() {
		return nil
	}
	return func(now sim.Cycle, req *mem.Request) (noc.FaultAction, sim.Cycle) {
		if in.opt.DropProb > 0 && in.rng.Bool(in.opt.DropProb) {
			in.stats.Dropped++
			return noc.FaultDrop, 0
		}
		if in.opt.DupProb > 0 && in.rng.Bool(in.opt.DupProb) {
			in.stats.Duplicated++
			return noc.FaultDuplicate, 0
		}
		if in.opt.DelayProb > 0 && in.rng.Bool(in.opt.DelayProb) {
			in.stats.Delayed++
			return noc.FaultDelay, in.opt.DelayCycles
		}
		return noc.FaultNone, 0
	}
}
