package fault

import "camouflage/internal/ckpt"

// Snapshot serializes the injector's RNG stream and counters, so a
// resumed fault-injected run draws the exact same fault sequence the
// uninterrupted run would have.
func (in *Injector) Snapshot(e *ckpt.Encoder) {
	in.rng.Snapshot(e)
	e.U64(in.stats.Dropped)
	e.U64(in.stats.Delayed)
	e.U64(in.stats.Duplicated)
	e.U64(in.stats.Corrupted)
}

// Restore implements ckpt.Stater.
func (in *Injector) Restore(d *ckpt.Decoder) error {
	if err := in.rng.Restore(d); err != nil {
		return err
	}
	in.stats.Dropped = d.U64()
	in.stats.Delayed = d.U64()
	in.stats.Duplicated = d.U64()
	in.stats.Corrupted = d.U64()
	return d.Err()
}
