// Package dispatch is the distributed campaign fabric: a TCP transport
// that generalizes the process-isolation worker protocol so a campaign
// supervisor can drive a fleet of remote workers across machines.
//
// The wire format is the campaign heartbeat framing — 4-byte big-endian
// length prefix, JSON payload, campaign.MaxFrameLen-bounded — carrying a
// small message vocabulary instead of bare heartbeat frames. Heartbeats
// themselves ride inside beat messages unchanged, metrics deltas and SLO
// alerts piggybacked exactly as on the local fd-3 pipe.
//
// Robustness model:
//
//   - Lease-based ownership: every assignment carries a lease deadline
//     and a fencing token from campaign.LeaseTable. Beats renew the
//     lease; a silent worker's lease expires, the job is re-leased under
//     a strictly greater token, and the zombie's late result is rejected
//     by token comparison — at-least-once dispatch, exactly-once
//     accounting.
//   - Reconnect with resumable state: a worker that loses the
//     supervisor retries with the campaign's deterministic exponential
//     backoff, re-handshakes with its last heartbeat cycle, and resumes
//     re-assigned jobs from spec-hash-keyed checkpoints, so a
//     partitioned-then-healed worker produces output byte-identical to
//     an uninterrupted run.
//   - Graceful degradation: with no reachable workers the supervisor
//     falls back to a local executor with one notice and a
//     campaign.dispatch.degraded gauge.
//
// The handshake authenticates with a shared campaign token (compared in
// constant time) and the fleet hash — campaign.JobsHash over the job
// list — so a supervisor never hands a job name to a worker that would
// resolve it to a different spec.
package dispatch

import (
	"crypto/subtle"

	"camouflage/internal/campaign"
	"camouflage/internal/harness"
)

// Message types. The conversation is strictly: worker sends hello,
// supervisor answers helloAck; then the supervisor sends assign/cancel/
// drain and the worker sends beat/result.
const (
	msgHello    = "hello"
	msgHelloAck = "hello-ack"
	msgAssign   = "assign"
	msgBeat     = "beat"
	msgResult   = "result"
	msgCancel   = "cancel"
	msgDrain    = "drain"
)

// msg is the single wire envelope; which fields are meaningful depends
// on Type. One flat struct keeps the codec trivial and the frames
// self-describing.
type msg struct {
	Type string `json:"type"`

	// hello (worker → supervisor)
	Token     string `json:"token,omitempty"`
	FleetHash string `json:"fleet_hash,omitempty"`
	// WorkerID names the worker on hello; on hello-ack it echoes the
	// effective identity — the announced ID, or a supervisor-assigned
	// stable one ("anon-N") when the worker announced none, which the
	// worker repeats on every reconnect so its fleet label (metric
	// prefixes, reconnect accounting, resume cycles) stays stable
	// across redials.
	WorkerID string `json:"worker_id,omitempty"`
	// LastAck carries the worker's last emitted heartbeat cycle on
	// hello (resume context after reconnect) and the supervisor's last
	// recorded cycle for that worker on hello-ack.
	LastAck uint64 `json:"last_ack,omitempty"`

	// hello-ack (supervisor → worker)
	OK     bool   `json:"ok,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Retry marks a refusal as transient (supervisor draining): the
	// worker backs off and redials instead of treating it as the
	// permanent ErrHandshakeRefused.
	Retry bool `json:"retry,omitempty"`

	// assign / beat / result / cancel: job identity and lease fence.
	JobName string `json:"job,omitempty"`
	JobHash string `json:"hash,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Fence   uint64 `json:"fence,omitempty"`

	// assign
	LeaseMS     int64  `json:"lease_ms,omitempty"`
	HeartbeatMS int64  `json:"heartbeat_ms,omitempty"`
	WantMetrics bool   `json:"want_metrics,omitempty"`
	SLO         string `json:"slo,omitempty"`

	// beat: one campaign heartbeat frame, verbatim.
	Beat *campaign.HeartbeatFrame `json:"beat,omitempty"`

	// result
	Table *harness.Table `json:"table,omitempty"`
	Error string         `json:"error,omitempty"`
	Class string         `json:"class,omitempty"`
}

// tokenEqual compares campaign tokens in constant time, so the
// handshake does not leak token prefixes through timing — this is,
// after all, a repo about timing side channels.
func tokenEqual(a, b string) bool {
	return subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}

// sanitizeLabel maps a worker identity (announced ID or remote address)
// to a metric-name-safe label: every byte outside [A-Za-z0-9_-] becomes
// '-', so "127.0.0.1:43210" → "127-0-0-1-43210" and the fleet prefix
// "worker.<label>.<jobhash>." parses unambiguously.
func sanitizeLabel(s string) string {
	if s == "" {
		return "unknown"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}
