package dispatch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"time"

	"camouflage/internal/campaign"
	"camouflage/internal/core"
	"camouflage/internal/iofault"
	"camouflage/internal/obs"
)

// Worker reconnect defaults; deliberately the same shape as the
// campaign retry loop.
const (
	DefaultReconnectBackoff    = 250 * time.Millisecond
	DefaultReconnectMaxBackoff = 5 * time.Second
)

// errDrained signals a clean supervisor-initiated shutdown.
var errDrained = errors.New("dispatch: drained")

// ErrHandshakeRefused marks a supervisor's permanent rejection (bad
// token, diverging job list). The worker does not retry it: the same
// hello would be refused identically. Transient refusals (supervisor
// draining) carry the ack's retry flag instead and are redialed with
// backoff.
var ErrHandshakeRefused = errors.New("dispatch: handshake refused")

// WorkerConfig configures one remote campaign worker.
type WorkerConfig struct {
	// Addr is the supervisor's host:port.
	Addr string
	// Token is the shared campaign secret.
	Token string
	// ID names this worker to the supervisor; it becomes the fleet
	// metric label, so keep it to [A-Za-z0-9_-]. Empty lets the
	// supervisor label by remote address.
	ID string
	// Jobs must be built identically to the supervisor's list — the
	// handshake verifies campaign.JobsHash over it.
	Jobs []campaign.Job
	// CheckpointRoot, when non-empty, gives each assigned job a private
	// checkpoint directory <root>/<spec-hash>, so a re-assigned attempt
	// resumes instead of restarting.
	CheckpointRoot string
	// Backoff/MaxBackoff/Seed drive the deterministic reconnect
	// schedule (campaign.BackoffDelay keyed by ID). Zero values select
	// the defaults.
	Backoff    time.Duration
	MaxBackoff time.Duration
	Seed       uint64
	// MaxDials bounds consecutive failed connection attempts before
	// RunWorker gives up (0 = keep retrying until ctx cancels).
	MaxDials int
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
	// Faults, when non-nil, wraps every dialed connection with injected
	// network chaos (the dial-side partition primitive).
	Faults *iofault.Injector
	// Dial overrides the dialer (tests); nil uses net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

// RunWorker connects to the supervisor and serves assigned jobs until
// ctx cancels, the supervisor drains the fleet (returns nil), or the
// handshake is permanently refused. A lost connection cancels the
// running attempt (its checkpoint state survives) and reconnects with
// deterministic exponential backoff; the supervisor re-leases the job
// and a re-assignment resumes from the spec-hash-keyed checkpoint, so
// the healed worker's output is byte-identical to an uninterrupted run.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultReconnectBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultReconnectMaxBackoff
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dial := cfg.Dial
	if dial == nil {
		var d net.Dialer
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	fleetHash := campaign.JobsHash(cfg.Jobs)
	key := cfg.ID
	if key == "" {
		key = cfg.Addr
	}

	w := &workerState{cfg: cfg, logf: logf, fleetHash: fleetHash}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := dial(ctx, cfg.Addr)
		if err == nil {
			conn = cfg.Faults.WrapConn(conn)
			err = w.serveConn(ctx, conn)
			conn.Close()
			switch {
			case errors.Is(err, errDrained):
				logf("dispatch worker: drained by supervisor")
				return nil
			case errors.Is(err, ErrHandshakeRefused):
				return err
			}
			if w.handshook {
				failures = 0 // the link worked; restart the backoff ladder
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logf("dispatch worker: connection lost (%v); reconnecting", err)
		}
		failures++
		if cfg.MaxDials > 0 && failures >= cfg.MaxDials {
			return fmt.Errorf("dispatch: giving up after %d connection attempts: %w", failures, err)
		}
		delay := campaign.BackoffDelay(cfg.Backoff, cfg.MaxBackoff, cfg.Seed, key, failures)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// workerState carries per-process worker state across reconnects.
type workerState struct {
	cfg       WorkerConfig
	logf      func(string, ...any)
	fleetHash string
	// lastCycle is the highest heartbeat cycle this worker ever
	// emitted; it rides the next hello so the supervisor knows the
	// resume point.
	lastCycle uint64
	// assignedID is the supervisor-assigned identity for a worker that
	// announced no ID of its own; echoing it on reconnect keeps the
	// fleet label stable across redials.
	assignedID string
	// handshook reports whether the most recent connection completed
	// its handshake.
	handshook bool
}

// serveConn handshakes and serves one connection until it breaks or the
// supervisor drains.
func (w *workerState) serveConn(ctx context.Context, conn net.Conn) error {
	w.handshook = false
	id := w.cfg.ID
	if id == "" {
		id = w.assignedID
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	hello := msg{
		Type:      msgHello,
		Token:     w.cfg.Token,
		FleetHash: w.fleetHash,
		WorkerID:  id,
		LastAck:   w.lastCycle,
	}
	if err := campaign.WriteFrameJSON(conn, hello); err != nil {
		return fmt.Errorf("dispatch: sending hello: %w", err)
	}
	var ack msg
	if err := campaign.ReadFrameJSON(conn, &ack); err != nil {
		return fmt.Errorf("dispatch: reading hello-ack: %w", err)
	}
	conn.SetDeadline(time.Time{})
	if ack.Type != msgHelloAck || !ack.OK {
		if ack.Retry {
			// Transient refusal (supervisor draining): redial with
			// backoff rather than dying permanently.
			return fmt.Errorf("dispatch: handshake deferred: %s", ack.Reason)
		}
		return fmt.Errorf("%w: %s", ErrHandshakeRefused, ack.Reason)
	}
	if w.cfg.ID == "" && ack.WorkerID != "" {
		w.assignedID = ack.WorkerID
	}
	w.handshook = true
	w.logf("dispatch worker: connected to %s (supervisor last saw cycle %d)", w.cfg.Addr, ack.LastAck)

	cw := &connWriter{conn: conn}
	var (
		runMu   sync.Mutex
		running string             // job hash of the in-flight attempt
		cancel  context.CancelFunc // cancels the in-flight attempt
		runDone chan struct{}      // closed when the attempt goroutine exits
	)
	cancelRunning := func(hash string) {
		runMu.Lock()
		if cancel != nil && (hash == "" || running == hash) {
			cancel()
		}
		runMu.Unlock()
	}
	waitRunning := func() {
		runMu.Lock()
		done := runDone
		runMu.Unlock()
		if done != nil {
			<-done
		}
	}
	defer func() {
		// The connection is gone: cancel the in-flight attempt so it
		// checkpoints and stops, then wait for it — the next connection
		// must not race it for the checkpoint directory.
		cancelRunning("")
		waitRunning()
	}()

	for {
		var m msg
		if err := campaign.ReadFrameJSON(conn, &m); err != nil {
			if err == io.EOF {
				return fmt.Errorf("dispatch: supervisor closed the connection")
			}
			return err
		}
		switch m.Type {
		case msgAssign:
			runMu.Lock()
			if runDone != nil {
				select {
				case <-runDone: // previous attempt finished
				default:
					runMu.Unlock()
					cw.send(msg{Type: msgResult, JobName: m.JobName, JobHash: m.JobHash, Attempt: m.Attempt, Fence: m.Fence,
						Error: "worker already running a job (supervisor protocol error)", Class: campaign.ClassFatal.String()})
					continue
				}
			}
			attemptCtx, c := context.WithCancel(ctx)
			cancel = c
			running = m.JobHash
			done := make(chan struct{})
			runDone = done
			runMu.Unlock()
			go func(m msg) {
				defer close(done)
				w.runAssignment(attemptCtx, cw, m)
			}(m)
		case msgCancel:
			cancelRunning(m.JobHash)
		case msgDrain:
			cancelRunning("")
			waitRunning()
			return errDrained
		default:
			w.logf("dispatch worker: unexpected %q frame", m.Type)
		}
	}
}

// runAssignment executes one assigned attempt and reports its result.
func (w *workerState) runAssignment(ctx context.Context, cw *connWriter, m msg) {
	var job *campaign.Job
	for i := range w.cfg.Jobs {
		if w.cfg.Jobs[i].Name == m.JobName {
			job = &w.cfg.Jobs[i]
			break
		}
	}
	result := msg{Type: msgResult, JobName: m.JobName, JobHash: m.JobHash, Attempt: m.Attempt, Fence: m.Fence}
	if job == nil {
		result.Error = fmt.Sprintf("unknown job %q (worker job list diverges from supervisor)", m.JobName)
		result.Class = campaign.ClassFatal.String()
		cw.send(result)
		return
	}
	if h := job.Hash(); h != m.JobHash {
		result.Error = fmt.Sprintf("spec hash mismatch for %q: worker built %s, supervisor sent %s", m.JobName, h, m.JobHash)
		result.Class = campaign.ClassFatal.String()
		cw.send(result)
		return
	}

	if w.cfg.CheckpointRoot != "" {
		ctx = campaign.WithCheckpointDir(ctx, filepath.Join(w.cfg.CheckpointRoot, m.JobHash))
	}
	bw := newBeatWriter(cw, m.JobHash, m.Fence, time.Duration(m.HeartbeatMS)*time.Millisecond)
	ctx = core.WithHeartbeatFunc(ctx, bw.Beat)
	if m.WantMetrics {
		reg := obs.NewRegistry()
		var monitor *obs.SLOMonitor
		if m.SLO != "" {
			if rules, err := obs.ParseSLOSpec(m.SLO); err == nil {
				monitor = obs.NewSLOMonitor(rules, reg, nil)
			} else {
				w.logf("dispatch worker: ignoring SLO spec: %v", err)
			}
		}
		ctx = obs.NewContext(ctx, &obs.Bundle{Registry: reg, Alerts: monitor})
		bw.SetTelemetry(obs.NewDeltaTracker(reg), monitor)
	}

	bw.Emit(campaign.FrameStart)
	table, err := campaign.RunAttempt(ctx, *job, m.Attempt)
	bw.Emit(campaign.FrameDone) // flushes the final metrics delta
	if c := bw.LastCycle(); c > w.lastCycle {
		w.lastCycle = c
	}

	result.Table = table
	if err != nil {
		result.Error = err.Error()
		result.Class = campaign.Classify(err).String()
	}
	if serr := cw.send(result); serr != nil {
		// The connection died with the result in hand. The supervisor
		// re-leases the job; determinism makes the re-run identical.
		w.logf("dispatch worker: could not deliver result for %s: %v", m.JobName, serr)
	}
}

// connWriter serializes frame writes on a shared connection (beats from
// the simulation goroutine race results from the serve loop).
type connWriter struct {
	mu     sync.Mutex
	conn   net.Conn
	broken bool
}

func (c *connWriter) send(m msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return fmt.Errorf("dispatch: connection marked broken")
	}
	if err := campaign.WriteFrameJSON(c.conn, m); err != nil {
		c.broken = true
		return err
	}
	return nil
}

// beatWriter is the network twin of campaign.HeartbeatWriter: throttled
// grid beats with metrics deltas and SLO alerts piggybacked, stamped
// with the lease fence so the supervisor can fence out zombies.
type beatWriter struct {
	mu        sync.Mutex
	cw        *connWriter
	hash      string
	fence     uint64
	every     time.Duration
	last      time.Time
	lastCycle uint64
	tracker   *obs.DeltaTracker
	monitor   *obs.SLOMonitor
}

func newBeatWriter(cw *connWriter, hash string, fence uint64, every time.Duration) *beatWriter {
	if every <= 0 {
		every = campaign.DefaultHeartbeatEvery
	}
	return &beatWriter{cw: cw, hash: hash, fence: fence, every: every}
}

func (b *beatWriter) SetTelemetry(tracker *obs.DeltaTracker, monitor *obs.SLOMonitor) {
	b.mu.Lock()
	b.tracker = tracker
	b.monitor = monitor
	b.mu.Unlock()
}

// Beat plugs into core.WithHeartbeatFunc: throttled lease-renewing grid
// frames.
func (b *beatWriter) Beat(hb core.Heartbeat) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastCycle = hb.Cycle
	if time.Since(b.last) < b.every {
		return
	}
	b.last = time.Now()
	b.emitLocked(campaign.HeartbeatFrame{
		Kind:          campaign.FrameGrid,
		Cycle:         hb.Cycle,
		RSS:           campaign.ReadRSS(),
		CkptDegraded:  hb.CheckpointDegraded,
		CkptSaveFails: hb.CheckpointSaveFailures,
	})
}

// Emit writes an unthrottled start/done frame.
func (b *beatWriter) Emit(kind string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.last = time.Now()
	b.emitLocked(campaign.HeartbeatFrame{Kind: kind, Cycle: b.lastCycle, RSS: campaign.ReadRSS()})
}

func (b *beatWriter) emitLocked(f campaign.HeartbeatFrame) {
	// Deltas are computed only at emission, as on the local pipe: the
	// next emitted frame carries everything the throttle held back.
	f.Metrics = b.tracker.Delta()
	f.Alerts = b.monitor.Drain()
	b.cw.send(msg{Type: msgBeat, JobHash: b.hash, Fence: b.fence, Beat: &f})
}

// LastCycle returns the highest cycle this writer observed.
func (b *beatWriter) LastCycle() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastCycle
}
