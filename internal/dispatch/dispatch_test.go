package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"camouflage/internal/campaign"
	"camouflage/internal/core"
	"camouflage/internal/harness"
	"camouflage/internal/iofault"
	"camouflage/internal/obs"
)

// tableJob is a deterministic job whose table depends only on its name,
// so a dispatched result can be byte-compared against a local run.
func tableJob(name string) campaign.Job {
	return campaign.Job{
		Name: name,
		Spec: "spec of " + name,
		Run: func(ctx context.Context, attempt int) (*harness.Table, error) {
			// Instrument and beat like a real simulation: one counter
			// increment, one grid heartbeat carrying the delta.
			if b := obs.FromContext(ctx); b != nil && b.Registry != nil {
				b.Registry.Counter("test.runs").Inc()
			}
			time.Sleep(3 * time.Millisecond) // outlive the beat throttle
			if hb := core.HeartbeatFuncFromContext(ctx); hb != nil {
				hb(core.Heartbeat{Cycle: 100})
			}
			t := &harness.Table{Title: name, Columns: []string{"k", "v"}}
			t.AddRow(name, "ok")
			return t, nil
		},
	}
}

// fleet spins up a supervisor plus n in-process workers and tears them
// down with the test.
func fleet(t *testing.T, cfg SupervisorConfig, n int, wcfg WorkerConfig) (*Supervisor, func()) {
	t.Helper()
	sup := NewSupervisor(cfg)
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := wcfg
		w.Addr = addr.String()
		if w.ID == "" {
			w.ID = fmt.Sprintf("w%d", i)
		} else {
			w.ID = fmt.Sprintf("%s%d", w.ID, i)
		}
		if w.Token == "" {
			w.Token = cfg.Token
		}
		if w.Jobs == nil {
			w.Jobs = cfg.Jobs
		}
		w.Backoff, w.MaxBackoff = time.Millisecond, 20*time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(ctx, w)
		}()
	}
	// Wait for the fleet to connect so tests don't race the handshake
	// into the degraded path.
	deadline := time.Now().Add(5 * time.Second)
	for sup.Workers() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n > 0 && sup.Workers() < n {
		t.Fatalf("fleet never connected: %d of %d workers", sup.Workers(), n)
	}
	return sup, func() {
		sup.Close()
		cancel()
		wg.Wait()
	}
}

func TestDispatchEndToEnd(t *testing.T) {
	jobs := []campaign.Job{tableJob("alpha"), tableJob("beta"), tableJob("gamma"), tableJob("delta")}
	reg := obs.NewRegistry()
	sup, stop := fleet(t, SupervisorConfig{
		Token:          "secret",
		Jobs:           jobs,
		LeaseTTL:       2 * time.Second,
		HeartbeatEvery: time.Millisecond,
		Registry:       reg,
		Log:            t.Logf,
	}, 2, WorkerConfig{Token: "secret"})
	defer stop()

	opt := campaign.Options{Workers: 2, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Dispatcher: sup, Log: t.Logf}
	sum, err := campaign.Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != len(jobs) || sum.Failed != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	// Results must be byte-identical to a local in-process run.
	local, err := campaign.Run(context.Background(), jobs, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sum.Results {
		if got, want := sum.Results[i].Table.String(), local.Results[i].Table.String(); got != want {
			t.Errorf("job %s: dispatched table diverges from local:\n got: %q\nwant: %q", jobs[i].Name, got, want)
		}
	}
	// Every job's single increment was merged under some fleet prefix
	// worker.<label>.<jobhash>.test.runs.
	for _, j := range jobs {
		total := 0.0
		for _, label := range []string{"w0", "w1"} {
			v, _ := reg.Value("worker." + label + "." + j.Hash() + ".test.runs")
			total += v
		}
		if total != 1 {
			t.Errorf("job %s: merged test.runs = %v across fleet, want 1", j.Name, total)
		}
	}
	if v, _ := reg.Value("campaign.dispatch.degraded"); v != 0 {
		t.Errorf("degraded gauge = %v with a live fleet", v)
	}
}

// TestDispatchZombieLeaseRejection is the satellite-3 scenario: a worker
// stalls past its lease, the job is re-leased and completed elsewhere,
// and the zombie's late result must be discarded, its metrics prefix
// zeroed, and the journal record the superseded attempt.
func TestDispatchZombieLeaseRejection(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	parked := make(chan struct{})
	job := campaign.Job{
		Name: "zjob",
		Spec: "zombie scenario",
		Run: func(ctx context.Context, attempt int) (*harness.Table, error) {
			n := calls.Add(1)
			if b := obs.FromContext(ctx); b != nil && b.Registry != nil {
				b.Registry.Counter("test.zombie").Inc()
			}
			time.Sleep(5 * time.Millisecond) // clear the start-frame throttle
			if hb := core.HeartbeatFuncFromContext(ctx); hb != nil {
				hb(core.Heartbeat{Cycle: uint64(n)}) // ships the delta, renews the lease
			}
			if n == 1 {
				close(parked)
				<-release // silent: no more heartbeats, lease expires
			}
			tb := &harness.Table{Title: "zjob", Columns: []string{"k", "v"}}
			tb.AddRow("zjob", "ok")
			return tb, nil
		},
	}
	jobs := []campaign.Job{job}
	hash := job.Hash()
	reg := obs.NewRegistry()
	journal, err := campaign.OpenJournal(filepath.Join(t.TempDir(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	sup, stop := fleet(t, SupervisorConfig{
		Token:          "secret",
		Jobs:           jobs,
		LeaseTTL:       150 * time.Millisecond,
		HeartbeatEvery: time.Millisecond,
		Registry:       reg,
		Journal:        journal,
		Log:            t.Logf,
	}, 2, WorkerConfig{Token: "secret"})
	defer stop()

	table, err := sup.Execute(context.Background(), job, 1)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if table == nil || calls.Load() != 2 {
		t.Fatalf("job completed after %d calls (table %v), want re-leased 2nd call to win", calls.Load(), table)
	}
	<-parked
	close(release) // the zombie wakes and delivers its late result

	// The zombie's result frame is processed asynchronously; wait for
	// the rejection counter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := reg.Value("campaign.dispatch.zombies_rejected"); v >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("zombie result was never rejected")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The journal recorded the superseded attempt with its fence and a
	// distinct class.
	var superseded []campaign.Record
	for _, rec := range journal.Records() {
		if rec.Status == campaign.StatusSuperseded {
			superseded = append(superseded, rec)
		}
	}
	if len(superseded) != 1 {
		t.Fatalf("superseded records = %d, want 1 (journal: %+v)", len(superseded), journal.Records())
	}
	zrec := superseded[0]
	if zrec.Hash != hash || zrec.Fence == 0 || zrec.Class != campaign.ClassSuperseded.String() || zrec.Worker == "" {
		t.Fatalf("superseded record malformed: %+v", zrec)
	}

	// The zombie's metrics prefix was zeroed; the winner's survives.
	zombiePrefix := "worker." + zrec.Worker + "." + hash + ".test.zombie"
	if v, ok := reg.Value(zombiePrefix); ok && v != 0 {
		t.Errorf("zombie metrics not zeroed: %s = %v", zombiePrefix, v)
	}
	var winner string
	for _, label := range []string{"w0", "w1"} {
		if label != zrec.Worker {
			winner = label
		}
	}
	if v, _ := reg.Value("worker." + winner + "." + hash + ".test.zombie"); v != 1 {
		t.Errorf("winner metrics lost: worker.%s.%s.test.zombie = %v, want 1", winner, hash, v)
	}
}

// TestDispatchExpiredLeaseLiveConnRecovery is the single-worker fleet
// scenario from review: the lease expires while the worker's connection
// stays alive (the attempt stalls, heartbeats stop). The supervisor must
// break the lease, fence out the stalled attempt's late (canceled)
// result as a zombie, and re-dispatch to the same — now idle — worker;
// the job must complete, never surface as fatally failed.
func TestDispatchExpiredLeaseLiveConnRecovery(t *testing.T) {
	var calls atomic.Int32
	job := campaign.Job{
		Name: "stall",
		Spec: "stalls past its lease on the first attempt",
		Run: func(ctx context.Context, attempt int) (*harness.Table, error) {
			if calls.Add(1) == 1 {
				// Go silent with the connection up: no beats, no result,
				// until the supervisor cancels the lease.
				<-ctx.Done()
				return nil, ctx.Err()
			}
			tb := &harness.Table{Title: "stall", Columns: []string{"k", "v"}}
			tb.AddRow("stall", "ok")
			return tb, nil
		},
	}
	jobs := []campaign.Job{job}
	reg := obs.NewRegistry()
	journal, err := campaign.OpenJournal(filepath.Join(t.TempDir(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	sup, stop := fleet(t, SupervisorConfig{
		Token:          "secret",
		Jobs:           jobs,
		LeaseTTL:       120 * time.Millisecond,
		HeartbeatEvery: time.Millisecond,
		Registry:       reg,
		Journal:        journal,
		Log:            t.Logf,
	}, 1, WorkerConfig{Token: "secret"})
	defer stop()

	table, err := sup.Execute(context.Background(), job, 1)
	if err != nil {
		t.Fatalf("execute after expired lease: %v", err)
	}
	if table == nil || calls.Load() != 2 {
		t.Fatalf("job completed after %d calls (table %v), want stalled 1st + re-leased 2nd", calls.Load(), table)
	}
	// The stalled attempt's canceled result was fenced out, not accepted.
	if v, _ := reg.Value("campaign.dispatch.zombies_rejected"); v < 1 {
		t.Errorf("zombies_rejected = %v, want >= 1", v)
	}
	var superseded int
	for _, rec := range journal.Records() {
		if rec.Status == campaign.StatusSuperseded {
			superseded++
		}
	}
	if superseded != 1 {
		t.Errorf("superseded journal records = %d, want 1", superseded)
	}
}

// TestDispatchRemoteTransientFailureRetries: a worker-side transient
// failure whose result frame is delivered must release the lease, not
// complete the job — the retry attempt re-acquires under a fresh fence
// instead of dying on ErrLeaseDone.
func TestDispatchRemoteTransientFailureRetries(t *testing.T) {
	var calls atomic.Int32
	job := campaign.Job{
		Name: "flaky",
		Spec: "fails transiently once",
		Run: func(ctx context.Context, attempt int) (*harness.Table, error) {
			if calls.Add(1) == 1 {
				return nil, campaign.Transient(fmt.Errorf("injected transient failure"))
			}
			tb := &harness.Table{Title: "flaky", Columns: []string{"k", "v"}}
			tb.AddRow("flaky", "ok")
			return tb, nil
		},
	}
	jobs := []campaign.Job{job}
	sup, stop := fleet(t, SupervisorConfig{
		Token:          "secret",
		Jobs:           jobs,
		LeaseTTL:       2 * time.Second,
		HeartbeatEvery: time.Millisecond,
		Log:            t.Logf,
	}, 1, WorkerConfig{Token: "secret"})
	defer stop()

	if _, err := sup.Execute(context.Background(), job, 1); err == nil || campaign.Classify(err) != campaign.ClassTransient {
		t.Fatalf("first attempt: want transient error, got %v", err)
	}
	table, err := sup.Execute(context.Background(), job, 2)
	if err != nil {
		t.Fatalf("retry attempt: %v", err)
	}
	if table == nil || calls.Load() != 2 {
		t.Fatalf("retry ran %d calls (table %v), want 2", calls.Load(), table)
	}
}

func TestDispatchDegradedFallback(t *testing.T) {
	jobs := []campaign.Job{tableJob("solo")}
	fallback, err := campaign.NewLocalExecutor(campaign.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, stop := fleet(t, SupervisorConfig{
		Token:    "secret",
		Jobs:     jobs,
		Registry: reg,
		Fallback: fallback,
		Log:      t.Logf,
	}, 0, WorkerConfig{})
	defer stop()

	table, err := sup.Execute(context.Background(), jobs[0], 1)
	if err != nil {
		t.Fatalf("degraded execute: %v", err)
	}
	if table == nil || table.Title != "solo" {
		t.Fatalf("fallback table: %+v", table)
	}
	if v, _ := reg.Value("campaign.dispatch.degraded"); v != 1 {
		t.Errorf("degraded gauge = %v, want 1", v)
	}
	// No fallback configured: degraded dispatch fails transient.
	bare := NewSupervisor(SupervisorConfig{Jobs: jobs})
	if _, err := bare.Execute(context.Background(), jobs[0], 1); err == nil || campaign.Classify(err) != campaign.ClassTransient {
		t.Fatalf("no-fallback execute: %v", err)
	}
}

func TestDispatchHandshakeRefused(t *testing.T) {
	jobs := []campaign.Job{tableJob("a")}
	sup := NewSupervisor(SupervisorConfig{Token: "right", Jobs: jobs, Log: t.Logf})
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	// Wrong token.
	err = RunWorker(context.Background(), WorkerConfig{
		Addr: addr.String(), Token: "wrong", Jobs: jobs, MaxDials: 1,
		Backoff: time.Millisecond, MaxBackoff: time.Millisecond,
	})
	if !errors.Is(err, ErrHandshakeRefused) {
		t.Fatalf("wrong token: want ErrHandshakeRefused, got %v", err)
	}
	// Diverging job list.
	err = RunWorker(context.Background(), WorkerConfig{
		Addr: addr.String(), Token: "right", Jobs: []campaign.Job{tableJob("other")}, MaxDials: 1,
		Backoff: time.Millisecond, MaxBackoff: time.Millisecond,
	})
	if !errors.Is(err, ErrHandshakeRefused) {
		t.Fatalf("fleet hash mismatch: want ErrHandshakeRefused, got %v", err)
	}
	if sup.Workers() != 0 {
		t.Fatalf("refused workers registered: %d", sup.Workers())
	}
}

// TestDispatchDrainRefusalRetried: "supervisor draining" is a transient
// refusal — a worker dialing into the drain window must back off and
// redial, reserving ErrHandshakeRefused for permanent rejections.
func TestDispatchDrainRefusalRetried(t *testing.T) {
	jobs := []campaign.Job{tableJob("a")}
	var dials atomic.Int32
	answer := func(c net.Conn, reply msg) {
		defer c.Close()
		var hello msg
		if err := campaign.ReadFrameJSON(c, &hello); err != nil {
			return
		}
		campaign.WriteFrameJSON(c, reply)
	}
	err := RunWorker(context.Background(), WorkerConfig{
		Addr: "pipe", Jobs: jobs, MaxDials: 5,
		Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Log:     t.Logf,
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			c1, c2 := net.Pipe()
			if dials.Add(1) < 3 {
				go answer(c2, msg{Type: msgHelloAck, Reason: "supervisor draining", Retry: true})
			} else {
				go answer(c2, msg{Type: msgHelloAck, Reason: "bad campaign token"})
			}
			return c1, nil
		},
	})
	if !errors.Is(err, ErrHandshakeRefused) {
		t.Fatalf("want ErrHandshakeRefused after drain retries, got %v", err)
	}
	if got := dials.Load(); got != 3 {
		t.Fatalf("dials = %d, want 3 (two drain refusals retried, then a permanent one)", got)
	}
}

// TestDispatchAnonymousWorkerReconnectIdentity: a worker announcing no
// ID gets a supervisor-assigned one in the hello-ack and echoes it when
// it redials, so the reconnect is counted against the same fleet
// identity instead of minting a fresh address-based label per source
// port.
func TestDispatchAnonymousWorkerReconnectIdentity(t *testing.T) {
	jobs := []campaign.Job{tableJob("a")}
	reg := obs.NewRegistry()
	sup := NewSupervisor(SupervisorConfig{Token: "s", Jobs: jobs, Registry: reg, Log: t.Logf})
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conns := make(chan net.Conn, 8)
	handshook := make(chan struct{}, 8)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(ctx, WorkerConfig{
			Addr: addr.String(), Token: "s", Jobs: jobs, // ID deliberately empty
			Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
			Log: func(format string, args ...any) {
				t.Logf(format, args...)
				// Severing before the worker reads its hello-ack (and
				// assigned ID) would legitimately mint a fresh identity.
				if strings.HasPrefix(format, "dispatch worker: connected to") {
					handshook <- struct{}{}
				}
			},
			Dial: func(ctx context.Context, a string) (net.Conn, error) {
				var d net.Dialer
				c, err := d.DialContext(ctx, "tcp", a)
				if err == nil {
					conns <- c
				}
				return c, err
			},
		})
	}()
	defer func() {
		// Close first: the worker's blocking read only breaks when its
		// connection does; cancel alone would deadlock wg.Wait.
		sup.Close()
		cancel()
		wg.Wait()
	}()

	first := <-conns
	<-handshook // the worker holds its assigned ID
	deadline := time.Now().Add(5 * time.Second)
	first.Close() // sever the link; the worker redials with its assigned ID
	for time.Now().Before(deadline) {
		if v, _ := reg.Value("campaign.dispatch.reconnects"); v >= 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("anonymous worker's reconnect was never counted (identity not stable across redials)")
}

// TestDispatchFleetGraceAnchoredAtServe: the FleetWait window opens when
// Serve begins accepting, not at construction — setup delay between
// NewSupervisor and Start must not shrink it into premature degradation.
func TestDispatchFleetGraceAnchoredAtServe(t *testing.T) {
	jobs := []campaign.Job{tableJob("g")}
	sup := NewSupervisor(SupervisorConfig{Jobs: jobs, FleetWait: 150 * time.Millisecond, Log: t.Logf})
	time.Sleep(250 * time.Millisecond) // longer than FleetWait: a construction-anchored window would have lapsed
	if _, err := sup.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err := sup.Execute(ctx, jobs[0], 1)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("execute inside post-Serve grace: want deadline-bounded wait, got %v", err)
	}
	if strings.Contains(fmt.Sprint(err), "no reachable workers") {
		t.Fatalf("degraded inside the grace window: %v", err)
	}

	time.Sleep(150 * time.Millisecond) // the post-Serve window has now lapsed
	_, err = sup.Execute(context.Background(), jobs[0], 1)
	if err == nil || campaign.Classify(err) != campaign.ClassTransient || !strings.Contains(err.Error(), "no reachable workers") {
		t.Fatalf("execute after grace: want transient no-workers failure, got %v", err)
	}
}

func TestDispatchDrainStopsWorkers(t *testing.T) {
	jobs := []campaign.Job{tableJob("a")}
	sup := NewSupervisor(SupervisorConfig{Token: "s", Jobs: jobs, Log: t.Logf})
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{
			Addr: addr.String(), Token: "s", Jobs: jobs,
			Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sup.Workers() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	sup.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained worker returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on drain")
	}
}

// TestDispatchPartitionReconnect drives a fleet whose dial-side
// connections partition mid-stream (the satellite-2 primitive): the
// campaign must still complete with results byte-identical to a local
// run, and the supervisor must have observed at least one reconnect.
func TestDispatchPartitionReconnect(t *testing.T) {
	jobs := []campaign.Job{tableJob("p1"), tableJob("p2"), tableJob("p3")}
	reg := obs.NewRegistry()
	sup := NewSupervisor(SupervisorConfig{
		Token:          "secret",
		Jobs:           jobs,
		LeaseTTL:       300 * time.Millisecond,
		HeartbeatEvery: time.Millisecond,
		Registry:       reg,
		Log:            t.Logf,
	})
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// Worker "flaky" always partitions a few hundred bytes into each
	// connection: it spends the test dying and re-handshaking. Worker
	// "solid" is healthy and carries the campaign to completion.
	inj := iofault.NewInjector(iofault.Options{Seed: 7, Partition: 1.0, PartitionBytes: 400})
	for _, w := range []WorkerConfig{
		{ID: "flaky", Faults: inj},
		{ID: "solid"},
	} {
		w.Addr, w.Token, w.Jobs = addr.String(), "secret", jobs
		w.Backoff, w.MaxBackoff = time.Millisecond, 10*time.Millisecond
		w.Log = t.Logf
		wg.Add(1)
		go func(w WorkerConfig) {
			defer wg.Done()
			RunWorker(ctx, w)
		}(w)
	}
	defer func() {
		sup.Close()
		cancel()
		wg.Wait()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sup.Workers() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	opt := campaign.Options{Workers: 2, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Retries: 10, Dispatcher: sup, Log: t.Logf}
	sum, err := campaign.Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != len(jobs) || sum.Failed != 0 {
		t.Fatalf("summary under partitions: %+v", sum)
	}
	local, err := campaign.Run(context.Background(), jobs, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sum.Results {
		if got, want := sum.Results[i].Table.String(), local.Results[i].Table.String(); got != want {
			t.Errorf("job %s under partitions diverges from local:\n got: %q\nwant: %q", jobs[i].Name, got, want)
		}
	}
	// The flaky worker keeps dying and re-handshaking independently of
	// the campaign; wait for proof that both the fault and the reconnect
	// path fired.
	for time.Now().Before(deadline) {
		v, _ := reg.Value("campaign.dispatch.reconnects")
		if inj.Stats().Partitions > 0 && v > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if inj.Stats().Partitions == 0 {
		t.Error("partition fault never fired")
	}
	if v, _ := reg.Value("campaign.dispatch.reconnects"); v == 0 {
		t.Error("flaky worker never re-handshaked")
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:43210": "127-0-0-1-43210",
		"w1":              "w1",
		"":                "unknown",
		"[::1]:80":        "---1--80",
		"a_b-C9":          "a_b-C9",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
