package dispatch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"camouflage/internal/campaign"
	"camouflage/internal/harness"
	"camouflage/internal/iofault"
	"camouflage/internal/obs"
	"camouflage/internal/sim"
)

// Defaults for the lease/handshake timing knobs.
const (
	// DefaultLeaseTTL is how long a worker may go silent before its
	// lease is presumed dead and the job re-leased. Beats renew it, so
	// it only needs to exceed the heartbeat interval with margin.
	DefaultLeaseTTL = 10 * time.Second
	// handshakeTimeout bounds the hello/hello-ack exchange.
	handshakeTimeout = 5 * time.Second
)

// SupervisorConfig configures a dispatch supervisor.
type SupervisorConfig struct {
	// Token is the shared campaign secret; a hello with a different
	// token is refused. Empty disables authentication (tests).
	Token string
	// Jobs is the campaign job list; its campaign.JobsHash is the fleet
	// identity workers must match in their hello.
	Jobs []campaign.Job
	// LeaseTTL is the silent-worker deadline (0 selects
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// HeartbeatEvery throttles worker beat frames (0 selects
	// campaign.DefaultHeartbeatEvery).
	HeartbeatEvery time.Duration
	// Fallback executes jobs locally when no remote worker is
	// reachable. Nil means degraded dispatch fails the attempt as
	// transient instead.
	Fallback campaign.Executor
	// FleetWait is a startup grace period: with an empty fleet, Execute
	// waits up to this long after Serve for the first worker to dial in
	// before degrading to Fallback. Zero degrades immediately.
	FleetWait time.Duration
	// Journal, when non-nil, additionally records superseded (zombie)
	// attempts with their fencing tokens.
	Journal *campaign.Journal
	// Registry receives fleet metrics: dispatch gauges/counters under
	// campaign.dispatch.*, and every worker's deltas merged under
	// worker.<label>.<jobhash>. prefixes.
	Registry *obs.Registry
	// History, when non-nil, records merged worker scalars as
	// (cycle, value) series.
	History *obs.History
	// Alerts, when non-nil, ingests worker-raised SLO alerts under the
	// worker's merge prefix.
	Alerts *obs.SLOMonitor
	// SLO is the declarative rule spec forwarded to workers.
	SLO string
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
	// Faults, when non-nil, wraps the listener (and every accepted
	// connection) with injected network chaos.
	Faults *iofault.Injector
}

// Supervisor drives a fleet of remote workers over TCP and implements
// campaign.Executor, so it plugs into campaign.Run as
// Options.Dispatcher.
type Supervisor struct {
	cfg       SupervisorConfig
	fleetHash string
	leases    *campaign.LeaseTable
	logf      func(string, ...any)

	ln net.Listener
	wg sync.WaitGroup

	mu           sync.Mutex
	started      time.Time // when Serve began accepting; anchors the FleetWait grace
	anonSeq      int       // assigned-ID counter for workers that announce no ID
	workers      map[*remoteWorker]struct{}
	seen         map[string]bool   // worker IDs that have connected before
	lastCycles   map[string]uint64 // worker ID → last beat cycle observed
	waiters      map[string]chan remoteResult
	degradedOnce bool
	closed       bool

	gWorkers  *obs.Gauge
	gDegraded *obs.Gauge
	gLeases   *obs.Gauge
	cReleases *obs.Counter
	cZombies  *obs.Counter
	cReconns  *obs.Counter
}

// remoteResult is one accepted (lease-validated) worker result.
type remoteResult struct {
	fence uint64
	table *harness.Table
	err   string
	class string
}

// remoteWorker is one connected worker from the supervisor's side.
type remoteWorker struct {
	sup   *Supervisor
	conn  net.Conn
	id    string // worker-announced ID ("" if none)
	label string // metric-safe identity: sanitized ID or remote address
	done  chan struct{}

	mu      sync.Mutex
	busy    bool
	suspect bool // lease expired while assigned; await zombie result or disconnect
	running string
	fence   uint64
	merger  *obs.Merger
	sendMu  sync.Mutex
}

// NewSupervisor builds a supervisor for the given job list. Serve (or
// Start) brings it online.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = campaign.DefaultHeartbeatEvery
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Supervisor{
		cfg:        cfg,
		fleetHash:  campaign.JobsHash(cfg.Jobs),
		leases:     campaign.NewLeaseTable(cfg.LeaseTTL),
		logf:       logf,
		workers:    make(map[*remoteWorker]struct{}),
		seen:       make(map[string]bool),
		lastCycles: make(map[string]uint64),
		waiters:    make(map[string]chan remoteResult),
		gWorkers:   cfg.Registry.Gauge("campaign.dispatch.workers"),
		gDegraded:  cfg.Registry.Gauge("campaign.dispatch.degraded"),
		gLeases:    cfg.Registry.Gauge("campaign.dispatch.leases_active"),
		cReleases:  cfg.Registry.Counter("campaign.dispatch.releases"),
		cZombies:   cfg.Registry.Counter("campaign.dispatch.zombies_rejected"),
		cReconns:   cfg.Registry.Counter("campaign.dispatch.reconnects"),
	}
	return s
}

// FleetHash returns the job-list identity workers must present.
func (s *Supervisor) FleetHash() string { return s.fleetHash }

// Start listens on addr (":0" for an ephemeral port) and serves in a
// background goroutine, returning the bound address.
func (s *Supervisor) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dispatch: listen %s: %w", addr, err)
	}
	bound := ln.Addr()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.Serve(ln); err != nil {
			s.logf("dispatch: serve: %v", err)
		}
	}()
	return bound, nil
}

// Serve accepts worker connections on ln until Close. Injected accept
// faults are absorbed (the accept loop continues); a closed listener
// ends the loop cleanly.
func (s *Supervisor) Serve(ln net.Listener) error {
	ln = s.cfg.Faults.WrapListener(ln)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	if s.started.IsZero() {
		// The FleetWait grace window opens when the fleet can actually
		// dial in, not at construction — setup work between NewSupervisor
		// and Serve must not eat into it.
		s.started = time.Now()
	}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, iofault.ErrInjected) {
				continue // chaos: a refused connection; the worker redials
			}
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dispatch: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Supervisor) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close drains the fleet: stop accepting, send every worker a drain
// frame, close connections, and wait for the handler goroutines.
// In-flight Execute calls observe their worker's disconnect and either
// re-dispatch or fall back; the campaign's own grace window governs how
// long that is allowed to take.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	var ws []*remoteWorker
	for w := range s.workers {
		ws = append(ws, w)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, w := range ws {
		w.send(msg{Type: msgDrain}) // best effort
		w.conn.Close()
	}
	s.wg.Wait()
}

// handleConn runs the handshake and then the per-worker reader loop.
func (s *Supervisor) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var hello msg
	if err := campaign.ReadFrameJSON(conn, &hello); err != nil {
		s.logf("dispatch: handshake read from %s: %v", conn.RemoteAddr(), err)
		return
	}
	conn.SetReadDeadline(time.Time{})
	// A refusal is permanent (bad token, diverging job list: the same
	// hello would be refused identically) unless retry is set, which
	// tells the worker to back off and redial — used for the transient
	// drain window, where a fresh supervisor may soon listen again.
	refuse := func(reason string, retry bool) {
		s.logf("dispatch: refusing %s: %s", conn.RemoteAddr(), reason)
		campaign.WriteFrameJSON(conn, msg{Type: msgHelloAck, Reason: reason, Retry: retry})
	}
	if hello.Type != msgHello {
		refuse(fmt.Sprintf("expected hello, got %q", hello.Type), false)
		return
	}
	if !tokenEqual(hello.Token, s.cfg.Token) {
		refuse("bad campaign token", false)
		return
	}
	if hello.FleetHash != s.fleetHash {
		refuse(fmt.Sprintf("fleet hash mismatch: worker %s, supervisor %s (job lists diverge)", hello.FleetHash, s.fleetHash), false)
		return
	}

	w := &remoteWorker{sup: s, conn: conn, id: hello.WorkerID, label: sanitizeLabel(hello.WorkerID), done: make(chan struct{})}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		refuse("supervisor draining", true)
		return
	}
	if w.id == "" {
		// Assign a stable fleet-unique ID the worker echoes on reconnect.
		// Labeling by remote address would mint a new identity per
		// connection (a new source port every redial), orphaning
		// seen/lastCycles state and leaving the previous connection's
		// partial metric prefixes un-zeroed.
		s.anonSeq++
		w.id = fmt.Sprintf("anon-%d", s.anonSeq)
		w.label = sanitizeLabel(w.id)
	}
	lastAck := s.lastCycles[w.label]
	if s.seen[w.label] {
		s.cReconns.Inc()
	}
	s.seen[w.label] = true
	s.workers[w] = struct{}{}
	s.gWorkers.Set(float64(len(s.workers)))
	s.gDegraded.Set(0) // fleet reachable again
	s.mu.Unlock()

	if err := w.send(msg{Type: msgHelloAck, OK: true, LastAck: lastAck, WorkerID: w.id}); err != nil {
		s.dropWorker(w)
		return
	}
	s.logf("dispatch: worker %s connected from %s (last-acked cycle %d)", w.label, conn.RemoteAddr(), hello.LastAck)
	label := w.label

	for {
		var m msg
		if err := campaign.ReadFrameJSON(conn, &m); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !s.isClosed() {
				s.logf("dispatch: worker %s read: %v", label, err)
			}
			s.dropWorker(w)
			return
		}
		switch m.Type {
		case msgBeat:
			s.onBeat(w, m)
		case msgResult:
			s.onResult(w, m)
		default:
			s.logf("dispatch: worker %s sent unexpected %q frame", label, m.Type)
		}
	}
}

// dropWorker deregisters a disconnected worker and releases any live
// lease it held so the waiting Execute re-dispatches immediately rather
// than waiting out the lease TTL.
func (s *Supervisor) dropWorker(w *remoteWorker) {
	w.conn.Close()
	s.mu.Lock()
	_, present := s.workers[w]
	delete(s.workers, w)
	s.gWorkers.Set(float64(len(s.workers)))
	s.mu.Unlock()
	if !present {
		return
	}
	w.mu.Lock()
	hash, fence, wasBusy := w.running, w.fence, w.busy
	w.busy, w.running, w.fence = false, "", 0
	suspect := w.suspect
	w.mu.Unlock()
	if wasBusy && !suspect {
		// The lease is released (not completed): the next Acquire grants
		// a strictly greater fence, so any result this worker somehow
		// still delivers is rejected. A suspect worker's lease was
		// already broken by re-acquisition — leave it alone.
		s.leases.Release(hash, fence)
		s.cReleases.Inc()
	}
	close(w.done)
	s.logf("dispatch: worker %s disconnected", w.label)
}

// onBeat renews the worker's lease and merges piggybacked telemetry.
// Beats carrying a stale fence (the lease was re-granted elsewhere) are
// dropped without touching the registry — the zombie's prefix has been
// zeroed and must stay that way.
func (s *Supervisor) onBeat(w *remoteWorker, m msg) {
	s.mu.Lock()
	if m.Beat != nil && m.Beat.Cycle > s.lastCycles[w.label] {
		s.lastCycles[w.label] = m.Beat.Cycle
	}
	s.mu.Unlock()
	if err := s.leases.Renew(m.JobHash, m.Fence); err != nil {
		if errors.Is(err, campaign.ErrLeaseSuperseded) {
			w.send(msg{Type: msgCancel, JobHash: m.JobHash, Fence: m.Fence})
		}
		return
	}
	w.mu.Lock()
	merger := w.merger
	current := w.running == m.JobHash && w.fence == m.Fence
	w.mu.Unlock()
	if !current || merger == nil || m.Beat == nil {
		return
	}
	merger.Apply(m.Beat.Metrics, sim.Cycle(m.Beat.Cycle))
	if len(m.Beat.Alerts) > 0 {
		s.cfg.Alerts.Ingest(merger.Prefix(), m.Beat.Alerts)
	}
}

// onResult routes a worker result through the lease table: an accepted
// fence completes the job (success) or releases it for retry (failure)
// and wakes the waiting Execute; a stale or broken fence is a zombie —
// the result is discarded, its metric prefix zeroed, and the journal
// records the superseded attempt. Failed attempts must not Complete:
// a completed job refuses all further leases, so the retry's Acquire
// would see ErrLeaseDone and the job could never be re-run.
func (s *Supervisor) onResult(w *remoteWorker, m msg) {
	var err error
	if m.Error == "" {
		err = s.leases.Complete(m.JobHash, m.Fence)
	} else {
		err = s.leases.Fail(m.JobHash, m.Fence)
	}
	s.gLeases.Set(float64(s.leases.Live()))

	w.mu.Lock()
	if w.running == m.JobHash {
		w.busy, w.suspect, w.running, w.fence, w.merger = false, false, "", 0, nil
	}
	w.mu.Unlock()

	if err == nil {
		s.mu.Lock()
		ch := s.waiters[m.JobHash]
		s.mu.Unlock()
		if ch != nil {
			ch <- remoteResult{fence: m.Fence, table: m.Table, err: m.Error, class: m.Class}
		}
		return
	}
	if errors.Is(err, campaign.ErrLeaseSuperseded) {
		s.cZombies.Inc()
		prefix := "worker." + w.label + "." + m.JobHash + "."
		s.cfg.Registry.ZeroPrefix(prefix)
		s.logf("dispatch: rejected zombie result for %s from %s (fence %d): %v", m.JobHash, w.label, m.Fence, err)
		if s.cfg.Journal != nil {
			s.cfg.Journal.Append(campaign.Record{
				Job:      m.JobName,
				Hash:     m.JobHash,
				Status:   campaign.StatusSuperseded,
				Attempts: m.Attempt,
				Class:    campaign.ClassSuperseded.String(),
				Error:    err.Error(),
				Fence:    m.Fence,
				Worker:   w.label,
			})
		}
		return
	}
	s.logf("dispatch: dropping unroutable result for %s from %s (fence %d): %v", m.JobHash, w.label, m.Fence, err)
}

// send writes one frame to the worker, serialized against concurrent
// senders.
func (w *remoteWorker) send(m msg) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	return campaign.WriteFrameJSON(w.conn, m)
}

// reserveIdle atomically claims an idle worker, or returns nil with the
// current fleet size.
func (s *Supervisor) reserveIdle() (*remoteWorker, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for w := range s.workers {
		w.mu.Lock()
		free := !w.busy && !w.suspect
		if free {
			w.busy = true
		}
		w.mu.Unlock()
		if free {
			return w, len(s.workers)
		}
	}
	return nil, len(s.workers)
}

// assign binds the lease to the worker and ships the assignment. The
// binding happens before the frame so a beat racing the assignment
// still finds its merger.
func (w *remoteWorker) assign(job campaign.Job, attempt int, lease campaign.Lease) error {
	s := w.sup
	var merger *obs.Merger
	if s.cfg.Registry != nil {
		merger = obs.NewMerger(s.cfg.Registry, "worker."+w.label+"."+lease.Hash+".")
		merger.SetHistory(s.cfg.History)
	}
	w.mu.Lock()
	w.running, w.fence, w.merger, w.suspect = lease.Hash, lease.Fence, merger, false
	w.mu.Unlock()
	return w.send(msg{
		Type:        msgAssign,
		JobName:     job.Name,
		JobHash:     lease.Hash,
		Attempt:     attempt,
		Fence:       lease.Fence,
		LeaseMS:     s.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: s.cfg.HeartbeatEvery.Milliseconds(),
		WantMetrics: s.cfg.Registry != nil,
		SLO:         s.cfg.SLO,
	})
}

// markSuspect flags a worker whose lease expired while assigned: it
// gets no new work until its late result (rejected as zombie) or its
// disconnect clears the flag.
func (w *remoteWorker) markSuspect(hash string, fence uint64) {
	w.mu.Lock()
	if w.running == hash && w.fence == fence {
		w.suspect = true
	}
	w.mu.Unlock()
}

// Execute implements campaign.Executor: lease the job to an idle remote
// worker and wait for its lease-validated result, re-leasing on worker
// death, disconnect, or lease expiry, and falling back to the local
// executor when the fleet is empty.
func (s *Supervisor) Execute(ctx context.Context, job campaign.Job, attempt int) (*harness.Table, error) {
	hash := job.Hash()
	resCh := make(chan remoteResult, 4)
	s.mu.Lock()
	s.waiters[hash] = resCh
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.waiters, hash)
		s.mu.Unlock()
	}()

	poll := s.cfg.LeaseTTL / 8
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dispatch: %s canceled before assignment: %w", job.Name, err)
		}
		w, fleet := s.reserveIdle()
		if w == nil {
			if fleet == 0 && !s.inFleetGrace() {
				return s.fallback(ctx, job, attempt)
			}
			select { // fleet busy: wait for a slot
			case <-ctx.Done():
				return nil, fmt.Errorf("dispatch: %s canceled waiting for a worker: %w", job.Name, ctx.Err())
			case <-time.After(poll):
			}
			continue
		}
		lease, err := s.leases.Acquire(hash, w.label)
		if err != nil {
			w.mu.Lock()
			w.busy = false
			w.mu.Unlock()
			if errors.Is(err, campaign.ErrLeaseDone) {
				// The job completed concurrently: a result was accepted in
				// the window between a presumed expiry and its delivery on
				// resCh. Complete only ever succeeds once and onResult
				// delivers to the registered waiter right after, so the
				// accepted result is guaranteed to arrive — await it
				// instead of reporting a completed job as fatally failed.
				for {
					select {
					case r := <-resCh:
						if r.err != "" {
							continue // stale errored delivery from an earlier lease
						}
						return r.table, nil
					case <-ctx.Done():
						return nil, fmt.Errorf("dispatch: %s canceled awaiting its accepted result: %w", job.Name, ctx.Err())
					}
				}
			}
			if errors.Is(err, campaign.ErrLeaseHeld) {
				// A previous holder's lease has not expired yet (e.g. a
				// zombie that still beats); wait for the table to break it.
				select {
				case <-ctx.Done():
					return nil, fmt.Errorf("dispatch: %s canceled waiting for lease: %w", job.Name, ctx.Err())
				case <-time.After(poll):
				}
				continue
			}
			return nil, campaign.Fatal(fmt.Errorf("dispatch: leasing %s: %w", job.Name, err))
		}
		s.gLeases.Set(float64(s.leases.Live()))
		if err := w.assign(job, attempt, lease); err != nil {
			s.leases.Release(hash, lease.Fence)
			s.cReleases.Inc()
			s.dropWorker(w)
			continue
		}
		s.logf("dispatch: leased %s to %s (fence %d)", job.Name, w.label, lease.Fence)

		// handle maps one delivered result onto this lease: a matching
		// fence ends the attempt; a stale delivery (an earlier lease of
		// this Execute call that failed late) is dropped.
		handle := func(r remoteResult) (*harness.Table, error, bool) {
			if r.fence != lease.Fence {
				return nil, nil, false
			}
			if r.err != "" {
				return r.table, reclassifyRemote(r.class, r.err, job.Name, w.label), true
			}
			return r.table, nil, true
		}

		redispatch := false
		for !redispatch {
			select {
			case r := <-resCh:
				if table, rerr, ok := handle(r); ok {
					return table, rerr
				}
			case <-ctx.Done():
				w.send(msg{Type: msgCancel, JobHash: hash, Fence: lease.Fence})
				s.leases.Release(hash, lease.Fence)
				s.gLeases.Set(float64(s.leases.Live()))
				return nil, fmt.Errorf("dispatch: %s canceled: %w", job.Name, ctx.Err())
			case <-w.done:
				// Worker gone; dropWorker already released the lease.
				redispatch = true
			case <-time.After(poll):
				// A completed result may sit in resCh already (or the
				// lease may have vanished because Complete just removed
				// it); prefer the delivery over the expiry presumption.
				select {
				case r := <-resCh:
					if table, rerr, ok := handle(r); ok {
						return table, rerr
					}
					continue
				default:
				}
				l, live := s.leases.Lookup(hash)
				if live && l.Fence == lease.Fence && !l.Broken && time.Now().Before(l.Expires) {
					continue
				}
				// Expired (or vanished): presume the worker dead, break the
				// lease so its holder can no longer renew or complete it
				// (the next Acquire then fences past it), quarantine the
				// worker, and re-dispatch. If instead the job completed in
				// this window, Break is a no-op and the re-acquire below
				// resolves to the accepted result via ErrLeaseDone.
				s.leases.Break(hash, lease.Fence)
				w.markSuspect(hash, lease.Fence)
				w.send(msg{Type: msgCancel, JobHash: hash, Fence: lease.Fence})
				s.cReleases.Inc()
				s.logf("dispatch: lease on %s expired (worker %s silent); re-leasing", job.Name, w.label)
				redispatch = true
			}
		}
	}
}

// inFleetGrace reports whether an empty fleet should still be waited
// on: the FleetWait window after Serve has not elapsed yet. Before
// Serve begins accepting the window has not even opened, so a
// FleetWait-configured supervisor waits rather than degrading.
func (s *Supervisor) inFleetGrace() bool {
	if s.cfg.FleetWait <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started.IsZero() || time.Since(s.started) < s.cfg.FleetWait
}

// fallback runs the job locally under the degraded-dispatch policy.
func (s *Supervisor) fallback(ctx context.Context, job campaign.Job, attempt int) (*harness.Table, error) {
	s.mu.Lock()
	first := !s.degradedOnce
	s.degradedOnce = true
	s.mu.Unlock()
	s.gDegraded.Set(1)
	if first {
		s.logf("dispatch: no reachable workers; degrading to local execution")
	}
	if s.cfg.Fallback == nil {
		return nil, campaign.Transient(fmt.Errorf("dispatch: no reachable workers for %s and no local fallback", job.Name))
	}
	return s.cfg.Fallback.Execute(ctx, job, attempt)
}

// reclassifyRemote rebuilds a classified error from its wire form,
// mirroring the process-isolation supervisor: fatal stays fatal,
// everything else retries as transient.
func reclassifyRemote(class, errStr, jobName, worker string) error {
	err := fmt.Errorf("dispatch: %s on %s: %s", jobName, worker, errStr)
	if class == campaign.ClassFatal.String() {
		return campaign.Fatal(err)
	}
	return campaign.Transient(err)
}

// Workers reports the currently connected fleet size.
func (s *Supervisor) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workers)
}
