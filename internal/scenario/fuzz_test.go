package scenario

import (
	"bytes"
	"testing"

	"camouflage/internal/trace"
)

// FuzzLoad throws arbitrary bytes at the scenario JSON loader. The
// contract under fuzzing: Load never panics, anything Load accepts also
// validates, and a small accepted scenario with known-profile workloads
// builds (or fails with an error) without panicking.
func FuzzLoad(f *testing.F) {
	// Committed seeds: the documented example, minimal valid scenarios
	// for several schemes, and near-miss malformed inputs that steer the
	// fuzzer at each validation branch.
	seeds := []string{
		`{"name":"bdc-demo","scheme":"bdc","cycles":500000,"cores":[
			{"workload":"mcf","resp_shaper":{"credits":[4,3,2,1,1,1,1,1,1,1]}},
			{"workload":"astar","req_shaper":{"credits":[10,9,8,7,6,5,4,3,2,1],"fake":true}},
			{"workload":"astar"},
			{"workload":"astar"}]}`,
		`{"name":"plain","scheme":"noshaping","cores":[{"workload":"gcc"}]}`,
		`{"name":"tp","scheme":"tp","tp_turn_length":512,"cores":[{"workload":"gcc"},{"workload":"mcf"}]}`,
		`{"name":"reqc","scheme":"reqc","seed":7,"cores":[
			{"workload":"apache","req_shaper":{"periodic_interval":100,"policy":"oblivious","randomize":true}}]}`,
		`{"name":"fs","scheme":"fs","fs_bank_partition":true,"closed_page":true,"channels":2,"cores":[{"workload":"bzip"}]}`,
		`{"name":"","scheme":"bogus","cores":[{"workload":"gcc"}]}`,
		`{"name":"empty","scheme":"noshaping","cores":[]}`,
		`{"name":"noworkload","scheme":"noshaping","cores":[{"workload":""}]}`,
		`{"name":"badshaper","scheme":"reqc","cores":[{"workload":"gcc","req_shaper":{}}]}`,
		`{"name":"badpolicy","scheme":"reqc","cores":[{"workload":"gcc","req_shaper":{"credits":[1],"policy":"nope"}}]}`,
		`{"unknown_field":true}`,
		`{"name":"trunc`,
		`[]`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Load accepted a scenario Validate rejects: %v", err)
		}
		// Build only small scenarios whose workloads are benchmark
		// profiles: fuzzed workload strings are also tried as file paths,
		// and fuzzed core counts can be arbitrarily large.
		if len(s.Cores) > 8 {
			return
		}
		for _, c := range s.Cores {
			if _, err := trace.ProfileByName(c.Workload); err != nil {
				return
			}
		}
		if _, err := s.Build(); err == nil {
			return // built fine — nothing more to check
		}
	})
}
