package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camouflage/internal/core"
	"camouflage/internal/shaper"
	"camouflage/internal/sim"
	"camouflage/internal/trace"
)

const bdcScenario = `{
  "name": "bdc-demo",
  "scheme": "bdc",
  "cycles": 100000,
  "cores": [
    {"workload": "mcf", "resp_shaper": {"credits": [4,3,2,1,1,1,1,1,1,1], "fake": true}},
    {"workload": "astar", "req_shaper": {"credits": [10,9,8,7,6,5,4,3,2,1], "fake": true}},
    {"workload": "astar", "req_shaper": {"credits": [10,9,8,7,6,5,4,3,2,1], "fake": true}},
    {"workload": "astar"}
  ]
}`

func TestLoadAndBuildBDC(t *testing.T) {
	s, err := Load(strings.NewReader(bdcScenario))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "bdc-demo" || len(s.Cores) != 4 {
		t.Fatalf("parsed %+v", s)
	}
	sys, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.RespShapers[0] == nil {
		t.Fatal("response shaper not attached to core 0")
	}
	if sys.ReqShapers[1] == nil || sys.ReqShapers[2] == nil {
		t.Fatal("request shapers not attached to cores 1-2")
	}
	if sys.ReqShapers[3] != nil {
		t.Fatal("core 3 should be unshaped")
	}
	sys.Run(50_000)
	if sys.SystemIPC() <= 0 {
		t.Fatal("scenario system made no progress")
	}
}

func TestLoadRejects(t *testing.T) {
	cases := []string{
		`{}`, // no cores
		`{"scheme": "warp", "cores": [{"workload": "mcf"}]}`,                   // bad scheme
		`{"scheme": "reqc", "cores": [{"workload": ""}]}`,                      // empty workload
		`{"scheme": "reqc", "cores": [{"workload": "mcf", "req_shaper": {}}]}`, // empty shaper
		`{"scheme": "reqc", "cores": [{"workload": "mcf"}], "bogus": 1}`,       // unknown field
		`not json`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestParseScheme(t *testing.T) {
	cases := map[string]core.Scheme{
		"":       core.NoShaping,
		"frfcfs": core.NoShaping,
		"CS":     core.CS,
		"tp":     core.TP,
		"fs":     core.FS,
		"reqc":   core.ReqC,
		"RespC":  core.RespC,
		"bdc":    core.BDC,
		"br":     core.BR,
	}
	for in, want := range cases {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]shaper.Policy{
		"":          shaper.PolicyExact,
		"exact":     shaper.PolicyExact,
		"at-most":   shaper.PolicyAtMost,
		"atmost":    shaper.PolicyAtMost,
		"Oblivious": shaper.PolicyOblivious,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPeriodicShaperSpec(t *testing.T) {
	src := `{
	  "scheme": "cs",
	  "cores": [
	    {"workload": "gcc", "req_shaper": {"periodic_interval": 154, "fake": true}}
	  ]
	}`
	s, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReqShapers[0].Config().PeriodicInterval; got != 154 {
		t.Fatalf("periodic interval %d", got)
	}
}

func TestScenarioWithRecordedTrace(t *testing.T) {
	// Capture a short trace to disk and reference it from a scenario.
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trace")
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(p, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	entries := trace.Capture(gen, 5000)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, entries); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src := `{"scheme": "noshaping", "cores": [{"workload": "` + path + `"}]}`
	s, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30_000)
	if sys.CoreStats(0).Refs == 0 {
		t.Fatal("recorded-trace workload issued nothing")
	}
}

func TestSubstrateKnobs(t *testing.T) {
	src := `{
	  "scheme": "tp",
	  "channels": 2,
	  "tp_turn_length": 256,
	  "closed_page": true,
	  "cores": [{"workload": "astar"}, {"workload": "astar"}]
	}`
	s, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Channels) != 2 {
		t.Fatalf("channels %d", len(sys.Channels))
	}
	sys.Run(20_000)
	if sys.Channel.Stats().RowHits != 0 {
		t.Fatal("closed_page knob ignored")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/s.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
