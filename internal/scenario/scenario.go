// Package scenario loads declarative experiment descriptions from JSON and
// builds runnable systems from them. A scenario names the per-core
// workloads (benchmark profiles or recorded trace files), the protection
// scheme, and any shaper configurations — everything needed to reproduce a
// run without writing Go:
//
//	{
//	  "name": "bdc-demo",
//	  "scheme": "bdc",
//	  "cycles": 500000,
//	  "cores": [
//	    {"workload": "mcf", "resp_shaper": {"credits": [4,3,2,1,1,1,1,1,1,1]}},
//	    {"workload": "astar", "req_shaper": {"credits": [10,9,8,7,6,5,4,3,2,1], "fake": true}},
//	    {"workload": "astar"},
//	    {"workload": "astar"}
//	  ]
//	}
//
// camsim accepts scenarios via -scenario.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"camouflage/internal/core"
	"camouflage/internal/shaper"
	"camouflage/internal/sim"
	"camouflage/internal/stats"
	"camouflage/internal/trace"
)

// ShaperSpec is the JSON form of a shaper configuration.
type ShaperSpec struct {
	// Credits per bin over the default ten-bin binning. Required unless
	// PeriodicInterval is set.
	Credits []int `json:"credits,omitempty"`
	// Window is the replenishment period in cycles (default 4096).
	Window uint64 `json:"window,omitempty"`
	// Fake enables the fake traffic generator.
	Fake bool `json:"fake,omitempty"`
	// Policy is "exact" (default), "at-most" or "oblivious".
	Policy string `json:"policy,omitempty"`
	// PeriodicInterval switches to strict constant-rate mode.
	PeriodicInterval uint64 `json:"periodic_interval,omitempty"`
	// Randomize enables §IV-B4 within-bin release jitter.
	Randomize bool `json:"randomize,omitempty"`
}

// CoreSpec describes one core's workload and optional shapers.
type CoreSpec struct {
	// Workload is a benchmark profile name (see trace.BenchmarkNames) or
	// a path to a recorded trace file, replayed in a loop.
	Workload string `json:"workload"`
	// ReqShaper and RespShaper attach Camouflage hardware to this core
	// (the scheme must permit them).
	ReqShaper  *ShaperSpec `json:"req_shaper,omitempty"`
	RespShaper *ShaperSpec `json:"resp_shaper,omitempty"`
}

// Scenario is a complete runnable description.
type Scenario struct {
	Name   string     `json:"name"`
	Scheme string     `json:"scheme"`
	Cycles uint64     `json:"cycles,omitempty"`
	Seed   uint64     `json:"seed,omitempty"`
	Cores  []CoreSpec `json:"cores"`

	// Optional substrate knobs.
	Channels         int    `json:"channels,omitempty"`
	TPTurnLength     uint64 `json:"tp_turn_length,omitempty"`
	BRRefillInterval uint64 `json:"br_refill_interval,omitempty"`
	ClosedPage       bool   `json:"closed_page,omitempty"`
	FSBankPartition  bool   `json:"fs_bank_partition,omitempty"`
}

// Load parses a scenario from r.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile parses a scenario from a JSON file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// ParseScheme maps a scenario scheme string to a core.Scheme.
func ParseScheme(s string) (core.Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "noshaping", "none", "frfcfs":
		return core.NoShaping, nil
	case "cs":
		return core.CS, nil
	case "tp":
		return core.TP, nil
	case "fs":
		return core.FS, nil
	case "reqc":
		return core.ReqC, nil
	case "respc":
		return core.RespC, nil
	case "bdc":
		return core.BDC, nil
	case "br":
		return core.BR, nil
	default:
		return 0, fmt.Errorf("scenario: unknown scheme %q", s)
	}
}

// ParsePolicy maps a shaper policy string to a shaper.Policy.
func ParsePolicy(s string) (shaper.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exact":
		return shaper.PolicyExact, nil
	case "at-most", "atmost":
		return shaper.PolicyAtMost, nil
	case "oblivious":
		return shaper.PolicyOblivious, nil
	default:
		return 0, fmt.Errorf("scenario: unknown policy %q", s)
	}
}

// Validate checks structural consistency (deeper validation happens when
// the shaper configs are built).
func (s *Scenario) Validate() error {
	if len(s.Cores) == 0 {
		return fmt.Errorf("scenario %q: no cores", s.Name)
	}
	if _, err := ParseScheme(s.Scheme); err != nil {
		return err
	}
	for i, c := range s.Cores {
		if c.Workload == "" {
			return fmt.Errorf("scenario %q: core %d has no workload", s.Name, i)
		}
		for _, sp := range []*ShaperSpec{c.ReqShaper, c.RespShaper} {
			if sp == nil {
				continue
			}
			if _, err := ParsePolicy(sp.Policy); err != nil {
				return err
			}
			if len(sp.Credits) == 0 && sp.PeriodicInterval == 0 {
				return fmt.Errorf("scenario %q: core %d shaper needs credits or periodic_interval", s.Name, i)
			}
		}
	}
	return nil
}

// shaperConfig materializes a spec.
func (sp *ShaperSpec) shaperConfig() (shaper.Config, error) {
	window := sim.Cycle(sp.Window)
	if window == 0 {
		window = 4 * shaper.DefaultWindow
	}
	if sp.PeriodicInterval > 0 {
		cfg := shaper.ConstantRate(stats.DefaultBinning(), sim.Cycle(sp.PeriodicInterval), window, sp.Fake)
		cfg.RandomizeWithinBin = sp.Randomize
		return cfg, nil
	}
	pol, err := ParsePolicy(sp.Policy)
	if err != nil {
		return shaper.Config{}, err
	}
	b := stats.DefaultBinning()
	credits := make([]int, b.N())
	copy(credits, sp.Credits)
	cfg := shaper.Config{
		Binning:            b,
		Credits:            credits,
		Window:             window,
		GenerateFake:       sp.Fake,
		Policy:             pol,
		RandomizeWithinBin: sp.Randomize,
	}
	if err := cfg.Validate(); err != nil {
		return shaper.Config{}, err
	}
	return cfg, nil
}

// Build materializes the scenario into a runnable system. Workload names
// resolve to benchmark profiles; names that are readable files load as
// recorded traces (looped).
func (s *Scenario) Build() (*core.System, error) {
	scheme, err := ParseScheme(s.Scheme)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Cores = len(s.Cores)
	cfg.Scheme = scheme
	cfg.Seed = s.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if s.Channels > 0 {
		cfg.Geometry.Channels = s.Channels
	}
	if s.TPTurnLength > 0 {
		cfg.TPTurnLength = sim.Cycle(s.TPTurnLength)
	}
	if s.BRRefillInterval > 0 {
		cfg.BRRefillInterval = sim.Cycle(s.BRRefillInterval)
	}
	cfg.ClosedPage = s.ClosedPage
	cfg.FSBankPartition = s.FSBankPartition

	var reqCores, respCores []int
	cfg.PerCoreReqCfg = map[int]shaper.Config{}
	cfg.PerCoreRespCfg = map[int]shaper.Config{}
	for i, c := range s.Cores {
		if c.ReqShaper != nil {
			sc, err := c.ReqShaper.shaperConfig()
			if err != nil {
				return nil, fmt.Errorf("core %d request shaper: %w", i, err)
			}
			cfg.PerCoreReqCfg[i] = sc
			reqCores = append(reqCores, i)
		}
		if c.RespShaper != nil {
			sc, err := c.RespShaper.shaperConfig()
			if err != nil {
				return nil, fmt.Errorf("core %d response shaper: %w", i, err)
			}
			cfg.PerCoreRespCfg[i] = sc
			respCores = append(respCores, i)
		}
	}
	cfg.ReqShaperCores = reqCores
	cfg.RespShaperCores = respCores
	if len(cfg.PerCoreReqCfg) == 0 {
		cfg.PerCoreReqCfg = nil
	}
	if len(cfg.PerCoreRespCfg) == 0 {
		cfg.PerCoreRespCfg = nil
	}

	rng := sim.NewRNG(cfg.Seed + 17)
	sources := make([]trace.Source, len(s.Cores))
	for i, c := range s.Cores {
		src, err := resolveWorkload(c.Workload, rng.Fork())
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", i, err)
		}
		sources[i] = src
	}
	return core.NewSystem(cfg, sources)
}

// resolveWorkload maps a workload string to a trace source.
func resolveWorkload(name string, rng *sim.RNG) (trace.Source, error) {
	if f, err := os.Open(name); err == nil {
		defer f.Close()
		entries, rerr := trace.ReadTrace(f)
		if rerr != nil {
			return nil, fmt.Errorf("%s: %w", name, rerr)
		}
		return trace.NewLoopSource(entries), nil
	}
	p, err := trace.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return trace.NewGenerator(p, rng)
}
