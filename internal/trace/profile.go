package trace

import (
	"fmt"
	"sort"

	"camouflage/internal/sim"
)

// Profile parameterizes a synthetic benchmark. The generator runs a
// two-state (burst/idle) process: inside a burst, references are issued
// with small gaps and mostly-sequential addresses (row-buffer locality);
// between bursts the core computes. Cache reuse is controlled by revisiting
// a bounded working set. Together these knobs reproduce the qualitative
// behaviour the paper's evaluation depends on.
type Profile struct {
	// Name is the benchmark label (astar, mcf, ...).
	Name string

	// BurstLen is the mean number of references per memory burst.
	BurstLen float64
	// BurstGapMean is the mean compute-cycle gap between bursts.
	BurstGapMean float64
	// IntraGapMean is the mean gap between references within a burst.
	IntraGapMean float64

	// SeqRun is the mean number of consecutive lines walked before the
	// stream jumps, controlling row-buffer locality.
	SeqRun float64
	// ReuseProb is the probability a reference revisits the working set
	// (an LLC hit, roughly) instead of touching a fresh line.
	ReuseProb float64
	// WorkingSetLines bounds the reusable footprint in cache lines.
	WorkingSetLines int
	// FootprintLines bounds the total address range in lines; streams
	// wrap around it (mcf-style huge footprints thrash every cache).
	FootprintLines uint64

	// WriteFrac is the fraction of references that are stores.
	WriteFrac float64
	// BlockingFrac is the fraction of loads that are dependent
	// (blocking); pointer-chasing codes like mcf are high, streaming
	// codes low.
	BlockingFrac float64

	// PhasePeriod, when non-zero, alternates the generator between the
	// profile above and a quieter phase every PhasePeriod references
	// (program phase behaviour: apache's request bursts, gcc's passes).
	PhasePeriod int
	// PhaseQuietScale multiplies BurstGapMean during quiet phases.
	PhaseQuietScale float64
}

// Validate rejects profiles the generator cannot run.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile missing name")
	case p.BurstLen < 1:
		return fmt.Errorf("trace: %s: BurstLen must be >= 1", p.Name)
	case p.FootprintLines == 0:
		return fmt.Errorf("trace: %s: FootprintLines must be positive", p.Name)
	case p.ReuseProb < 0 || p.ReuseProb > 1:
		return fmt.Errorf("trace: %s: ReuseProb out of [0,1]", p.Name)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("trace: %s: WriteFrac out of [0,1]", p.Name)
	case p.BlockingFrac < 0 || p.BlockingFrac > 1:
		return fmt.Errorf("trace: %s: BlockingFrac out of [0,1]", p.Name)
	}
	return nil
}

// Benchmarks returns the 11-workload suite the paper evaluates: SPECInt
// 2006 plus the Apache web server. Parameters are calibrated to the
// qualitative characteristics the paper relies on — mcf and libquantum are
// memory hogs, omnetpp and astar are moderately intensive and bursty,
// sjeng/h264ref/gobmk are compute-bound, apache is phase-bursty.
func Benchmarks() []Profile {
	return []Profile{
		{
			Name: "astar", BurstLen: 4, BurstGapMean: 450, IntraGapMean: 6,
			SeqRun: 3, ReuseProb: 0.55, WorkingSetLines: 4096, FootprintLines: 1 << 22,
			WriteFrac: 0.25, BlockingFrac: 0.55,
		},
		{
			Name: "bzip", BurstLen: 6, BurstGapMean: 420, IntraGapMean: 8,
			SeqRun: 12, ReuseProb: 0.70, WorkingSetLines: 8192, FootprintLines: 1 << 21,
			WriteFrac: 0.35, BlockingFrac: 0.30,
		},
		{
			Name: "gcc", BurstLen: 5, BurstGapMean: 380, IntraGapMean: 10,
			SeqRun: 6, ReuseProb: 0.65, WorkingSetLines: 6144, FootprintLines: 1 << 22,
			WriteFrac: 0.30, BlockingFrac: 0.40,
			PhasePeriod: 3000, PhaseQuietScale: 3,
		},
		{
			Name: "h264ref", BurstLen: 3, BurstGapMean: 900, IntraGapMean: 12,
			SeqRun: 16, ReuseProb: 0.85, WorkingSetLines: 2048, FootprintLines: 1 << 20,
			WriteFrac: 0.30, BlockingFrac: 0.25,
		},
		{
			Name: "gobmk", BurstLen: 3, BurstGapMean: 800, IntraGapMean: 14,
			SeqRun: 2, ReuseProb: 0.80, WorkingSetLines: 2048, FootprintLines: 1 << 20,
			WriteFrac: 0.25, BlockingFrac: 0.45,
		},
		{
			Name: "omnetpp", BurstLen: 10, BurstGapMean: 700, IntraGapMean: 5,
			SeqRun: 2, ReuseProb: 0.45, WorkingSetLines: 8192, FootprintLines: 1 << 23,
			WriteFrac: 0.35, BlockingFrac: 0.55,
		},
		{
			Name: "hmmer", BurstLen: 4, BurstGapMean: 650, IntraGapMean: 9,
			SeqRun: 20, ReuseProb: 0.80, WorkingSetLines: 3072, FootprintLines: 1 << 20,
			WriteFrac: 0.40, BlockingFrac: 0.20,
		},
		{
			Name: "mcf", BurstLen: 14, BurstGapMean: 520, IntraGapMean: 4,
			SeqRun: 1, ReuseProb: 0.20, WorkingSetLines: 16384, FootprintLines: 1 << 24,
			WriteFrac: 0.20, BlockingFrac: 0.70,
		},
		{
			Name: "libqt", BurstLen: 12, BurstGapMean: 150, IntraGapMean: 3,
			SeqRun: 64, ReuseProb: 0.10, WorkingSetLines: 1024, FootprintLines: 1 << 24,
			WriteFrac: 0.10, BlockingFrac: 0.20,
		},
		{
			Name: "sjeng", BurstLen: 2, BurstGapMean: 1100, IntraGapMean: 15,
			SeqRun: 2, ReuseProb: 0.85, WorkingSetLines: 1536, FootprintLines: 1 << 20,
			WriteFrac: 0.25, BlockingFrac: 0.40,
		},
		{
			Name: "apache", BurstLen: 8, BurstGapMean: 300, IntraGapMean: 5,
			SeqRun: 8, ReuseProb: 0.60, WorkingSetLines: 6144, FootprintLines: 1 << 22,
			WriteFrac: 0.35, BlockingFrac: 0.35,
			PhasePeriod: 1500, PhaseQuietScale: 6,
		},
	}
}

// ProfileByName returns the named benchmark profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// BenchmarkNames returns the suite's names in evaluation order.
func BenchmarkNames() []string {
	ps := Benchmarks()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Generator produces an infinite instruction stream from a Profile.
type Generator struct {
	p   Profile
	rng *sim.RNG

	// burst state
	inBurst   bool
	burstLeft int

	// address state
	cursor     uint64 // current streaming line
	seqLeft    int
	workingSet []uint64
	refs       int
	quiet      bool
}

// NewGenerator returns a generator over profile p seeded from rng.
// Different cores must use forked RNGs for independent streams. Profiles
// arrive from scenario files and flags, so an invalid one is an error.
func NewGenerator(p Profile, rng *sim.RNG) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, rng: rng}
	g.cursor = rng.Uint64n(p.FootprintLines)
	return g, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Next implements Source. Generators never end.
func (g *Generator) Next() (Entry, bool) {
	p := g.p

	// Phase behaviour: alternate busy and quiet phases.
	if p.PhasePeriod > 0 && g.refs%p.PhasePeriod == 0 && g.refs > 0 {
		g.quiet = !g.quiet
	}
	g.refs++

	var gap sim.Cycle
	if !g.inBurst || g.burstLeft <= 0 {
		g.inBurst = true
		g.burstLeft = int(g.rng.Geometric(p.BurstLen))
		gapMean := p.BurstGapMean
		if g.quiet && p.PhaseQuietScale > 0 {
			gapMean *= p.PhaseQuietScale
		}
		gap = sim.Cycle(g.rng.Geometric(gapMean))
	} else {
		gap = sim.Cycle(g.rng.Geometric(p.IntraGapMean))
	}
	g.burstLeft--

	addr := g.nextAddr()
	write := g.rng.Bool(p.WriteFrac)
	blocking := !write && g.rng.Bool(p.BlockingFrac)
	return Entry{Gap: gap, Addr: addr, Write: write, Blocking: blocking}, true
}

func (g *Generator) nextAddr() uint64 {
	p := g.p
	// Reuse: revisit the working set.
	if len(g.workingSet) > 0 && g.rng.Bool(p.ReuseProb) {
		return g.workingSet[g.rng.Intn(len(g.workingSet))] * 64
	}
	// Stream: continue the sequential run or jump.
	if g.seqLeft <= 0 {
		g.cursor = g.rng.Uint64n(p.FootprintLines)
		g.seqLeft = int(g.rng.Geometric(p.SeqRun))
	}
	lineAddr := g.cursor
	g.cursor = (g.cursor + 1) % p.FootprintLines
	g.seqLeft--

	if p.WorkingSetLines > 0 {
		if len(g.workingSet) < p.WorkingSetLines {
			g.workingSet = append(g.workingSet, lineAddr)
		} else {
			g.workingSet[g.rng.Intn(len(g.workingSet))] = lineAddr
		}
	}
	return lineAddr * 64
}

// SortedByIntensity returns profile names ordered from most to least
// memory-intensive (by expected references per kilocycle), for reporting.
func SortedByIntensity() []string {
	ps := Benchmarks()
	type ranked struct {
		name string
		rpk  float64
	}
	rs := make([]ranked, len(ps))
	for i, p := range ps {
		// One burst of BurstLen refs occurs every
		// (BurstGapMean + BurstLen*IntraGapMean) cycles.
		period := p.BurstGapMean + p.BurstLen*p.IntraGapMean
		rs[i] = ranked{p.Name, p.BurstLen / period * 1000}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].rpk > rs[j].rpk })
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.name
	}
	return names
}
