// Package trace generates the simulated workloads. The paper drives its
// simulator with GEM5 Alpha traces of SPECInt 2006 and the Apache web
// server; those traces are proprietary, so this package substitutes
// parameterized synthetic generators whose per-benchmark profiles preserve
// the properties the evaluation depends on: relative memory intensity,
// burstiness, row-buffer locality and cache reuse. It also implements the
// paper's Algorithm 1 covert-channel sender verbatim.
package trace

import "camouflage/internal/sim"

// Entry is one memory reference in a core's instruction stream.
type Entry struct {
	// Gap is the number of compute cycles the core spends before this
	// reference (its distance from the previous one).
	Gap sim.Cycle
	// Addr is the referenced byte address.
	Addr uint64
	// Write marks stores.
	Write bool
	// Blocking marks loads the core cannot advance past until the data
	// returns (dependent loads); non-blocking references overlap under
	// the MSHR limit.
	Blocking bool
	// Idle marks a pure compute entry: the core consumes Gap cycles and
	// issues no memory reference (Algorithm 1's DoNothing pulse).
	Idle bool
}

// Source produces an instruction stream. Generators are infinite; ok
// reports end-of-trace for finite sources such as recorded covert-channel
// transmissions.
//
// Exhaustion is terminal: once Next has returned ok == false the source
// must return ok == false forever, without side effects. The core stops
// polling a source after its first end-of-trace (so a finished core is
// pure idle the kernel's fast path can skip), which means a source that
// "revived" after reporting exhaustion would never be heard — and a
// stateful Next-at-exhaustion would make fast-path and stepped runs
// diverge.
type Source interface {
	Next() (Entry, bool)
}

// Clocked is implemented by sources whose behaviour depends on wall-clock
// time rather than instruction count — Algorithm 1's "while ElapsedTime <
// PULSE" loop is the canonical case. The core calls SetNow with the
// current cycle before each Next.
type Clocked interface {
	SetNow(now sim.Cycle)
}

// SliceSource replays a fixed slice of entries once.
type SliceSource struct {
	entries []Entry
	pos     int
}

// NewSliceSource returns a source that replays entries and then ends.
func NewSliceSource(entries []Entry) *SliceSource {
	return &SliceSource{entries: entries}
}

// Next implements Source.
func (s *SliceSource) Next() (Entry, bool) {
	if s.pos >= len(s.entries) {
		return Entry{}, false
	}
	e := s.entries[s.pos]
	s.pos++
	return e, true
}

// Remaining returns how many entries are left.
func (s *SliceSource) Remaining() int { return len(s.entries) - s.pos }

// LoopSource replays a fixed slice of entries forever.
type LoopSource struct {
	entries []Entry
	pos     int
}

// NewLoopSource returns a source that cycles through entries endlessly.
// It panics on an empty slice.
func NewLoopSource(entries []Entry) *LoopSource {
	if len(entries) == 0 {
		panic("trace: NewLoopSource with no entries")
	}
	return &LoopSource{entries: entries}
}

// Next implements Source.
func (s *LoopSource) Next() (Entry, bool) {
	e := s.entries[s.pos]
	s.pos = (s.pos + 1) % len(s.entries)
	return e, true
}

// PhasedSource alternates between two sources on a wall-clock period —
// the program-phase behaviour the paper's §II-A threat model says an
// adversary can infer ("memory intensity over time"): Busy drives the
// even phases, Quiet the odd ones. It implements Clocked, so the phase is
// determined by simulation time, giving experiments exact ground truth
// via PhaseAt.
type PhasedSource struct {
	Busy   Source
	Quiet  Source
	Period sim.Cycle

	now sim.Cycle
}

// NewPhasedSource returns a source alternating between busy and quiet
// every period cycles. It panics on a zero period.
func NewPhasedSource(busy, quiet Source, period sim.Cycle) *PhasedSource {
	if period == 0 {
		panic("trace: PhasedSource with zero period")
	}
	return &PhasedSource{Busy: busy, Quiet: quiet, Period: period}
}

// SetNow implements Clocked.
func (p *PhasedSource) SetNow(now sim.Cycle) {
	p.now = now
	if c, ok := p.Busy.(Clocked); ok {
		c.SetNow(now)
	}
	if c, ok := p.Quiet.(Clocked); ok {
		c.SetNow(now)
	}
}

// PhaseAt returns 0 (busy) or 1 (quiet) for the given cycle.
func (p *PhasedSource) PhaseAt(now sim.Cycle) int {
	return int(now / p.Period % 2)
}

// Next implements Source: the entry comes from whichever phase the clock
// is in. Long gaps are clipped to the phase boundary so a quiet phase's
// idle stretch cannot swallow the next busy phase.
func (p *PhasedSource) Next() (Entry, bool) {
	var src Source
	if p.PhaseAt(p.now) == 0 {
		src = p.Busy
	} else {
		src = p.Quiet
	}
	e, ok := src.Next()
	if !ok {
		return Entry{}, false
	}
	if remaining := p.Period - p.now%p.Period; e.Gap > remaining {
		e.Gap = remaining
	}
	return e, true
}

// Concat plays each source to completion in order.
type Concat struct {
	sources []Source
}

// NewConcat returns a source concatenating the given sources.
func NewConcat(sources ...Source) *Concat {
	return &Concat{sources: sources}
}

// Next implements Source.
func (c *Concat) Next() (Entry, bool) {
	for len(c.sources) > 0 {
		e, ok := c.sources[0].Next()
		if ok {
			return e, true
		}
		c.sources = c.sources[1:]
	}
	return Entry{}, false
}
