package trace

import (
	"camouflage/internal/ckpt"
	"camouflage/internal/sim"
)

// snapshotEntry writes one Entry.
func snapshotEntry(e *ckpt.Encoder, en Entry) {
	e.U64(uint64(en.Gap))
	e.U64(en.Addr)
	e.Bool(en.Write)
	e.Bool(en.Blocking)
	e.Bool(en.Idle)
}

// restoreEntry reads one Entry.
func restoreEntry(d *ckpt.Decoder) Entry {
	return Entry{
		Gap:      sim.Cycle(d.U64()),
		Addr:     d.U64(),
		Write:    d.Bool(),
		Blocking: d.Bool(),
		Idle:     d.Bool(),
	}
}

// SnapshotSource serializes the state of src if it is a ckpt.Stater, with
// a presence flag, so composite sources restore symmetrically into an
// identically constructed tree. A stateless source contributes one flag
// byte.
func SnapshotSource(e *ckpt.Encoder, src Source) {
	st, ok := src.(ckpt.Stater)
	e.Bool(ok)
	if ok {
		st.Snapshot(e)
	}
}

// RestoreSource restores the state of src written by SnapshotSource.
func RestoreSource(d *ckpt.Decoder, src Source) error {
	has := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	st, ok := src.(ckpt.Stater)
	if has != ok {
		return ckpt.Mismatch("trace: source statefulness mismatch (checkpoint %v, live %v)", has, ok)
	}
	if ok {
		return st.Restore(d)
	}
	return nil
}

// Snapshot serializes the replay cursor; the entries are construction-time
// configuration (they come from the same trace file or capture).
func (s *SliceSource) Snapshot(e *ckpt.Encoder) { e.Int(s.pos) }

// Restore implements ckpt.Stater.
func (s *SliceSource) Restore(d *ckpt.Decoder) error {
	pos := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if pos < 0 || pos > len(s.entries) {
		return ckpt.Mismatch("trace: slice cursor %d outside %d entries", pos, len(s.entries))
	}
	s.pos = pos
	return nil
}

// Snapshot serializes the loop cursor.
func (s *LoopSource) Snapshot(e *ckpt.Encoder) { e.Int(s.pos) }

// Restore implements ckpt.Stater.
func (s *LoopSource) Restore(d *ckpt.Decoder) error {
	pos := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if pos < 0 || pos >= len(s.entries) {
		return ckpt.Mismatch("trace: loop cursor %d outside %d entries", pos, len(s.entries))
	}
	s.pos = pos
	return nil
}

// Snapshot serializes the wall clock and both phase sources.
func (p *PhasedSource) Snapshot(e *ckpt.Encoder) {
	e.U64(uint64(p.now))
	SnapshotSource(e, p.Busy)
	SnapshotSource(e, p.Quiet)
}

// Restore implements ckpt.Stater.
func (p *PhasedSource) Restore(d *ckpt.Decoder) error {
	p.now = sim.Cycle(d.U64())
	if err := RestoreSource(d, p.Busy); err != nil {
		return err
	}
	if err := RestoreSource(d, p.Quiet); err != nil {
		return err
	}
	return d.Err()
}

// Snapshot serializes how many sources remain plus each remaining
// source's state. Consumed sources are dropped on restore.
func (c *Concat) Snapshot(e *ckpt.Encoder) {
	e.Len(len(c.sources))
	for _, s := range c.sources {
		SnapshotSource(e, s)
	}
}

// Restore implements ckpt.Stater. The receiver must hold the full
// original source list (a fresh construction); sources the checkpointed
// run already consumed are dropped from the front.
func (c *Concat) Restore(d *ckpt.Decoder) error {
	remaining := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	if remaining > len(c.sources) {
		return ckpt.Mismatch("trace: concat has %d sources, checkpoint needs %d", len(c.sources), remaining)
	}
	c.sources = c.sources[len(c.sources)-remaining:]
	for _, s := range c.sources {
		if err := RestoreSource(d, s); err != nil {
			return err
		}
	}
	return d.Err()
}

// Snapshot serializes the generator's burst, address and phase state.
// The profile is construction-time configuration; the RNG is owned (and
// snapshotted) by the generator because it was forked specifically for
// this stream.
func (g *Generator) Snapshot(e *ckpt.Encoder) {
	g.rng.Snapshot(e)
	e.Bool(g.inBurst)
	e.Int(g.burstLeft)
	e.U64(g.cursor)
	e.Int(g.seqLeft)
	e.Len(len(g.workingSet))
	for _, line := range g.workingSet {
		e.U64(line)
	}
	e.Int(g.refs)
	e.Bool(g.quiet)
}

// Restore implements ckpt.Stater.
func (g *Generator) Restore(d *ckpt.Decoder) error {
	if err := g.rng.Restore(d); err != nil {
		return err
	}
	g.inBurst = d.Bool()
	g.burstLeft = d.Int()
	g.cursor = d.U64()
	g.seqLeft = d.Int()
	n := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	g.workingSet = g.workingSet[:0]
	for i := 0; i < n; i++ {
		g.workingSet = append(g.workingSet, d.U64())
	}
	g.refs = d.Int()
	g.quiet = d.Bool()
	return d.Err()
}

// Snapshot serializes the sender's wall clock, store cursor and
// completion flag (key, pulse and gap are construction-time).
func (s *CovertSender) Snapshot(e *ckpt.Encoder) {
	e.U64(uint64(s.now))
	e.U64(s.line)
	e.Bool(s.done)
}

// Restore implements ckpt.Stater.
func (s *CovertSender) Restore(d *ckpt.Decoder) error {
	s.now = sim.Cycle(d.U64())
	s.line = d.U64()
	s.done = d.Bool()
	return d.Err()
}

// Snapshot forwards to the wrapped source and serializes the captured
// entries, so a restored recorder's replay buffer is complete.
func (r *Recorder) Snapshot(e *ckpt.Encoder) {
	SnapshotSource(e, r.src)
	e.Len(len(r.Recorded))
	for _, en := range r.Recorded {
		snapshotEntry(e, en)
	}
}

// Restore implements ckpt.Stater.
func (r *Recorder) Restore(d *ckpt.Decoder) error {
	if err := RestoreSource(d, r.src); err != nil {
		return err
	}
	n := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	r.Recorded = r.Recorded[:0]
	for i := 0; i < n; i++ {
		r.Recorded = append(r.Recorded, restoreEntry(d))
	}
	return d.Err()
}
