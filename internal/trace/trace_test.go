package trace

import (
	"testing"
	"testing/quick"

	"camouflage/internal/sim"
)

func TestSliceSourceEnds(t *testing.T) {
	s := NewSliceSource([]Entry{{Gap: 1}, {Gap: 2}})
	if s.Remaining() != 2 {
		t.Fatalf("remaining %d", s.Remaining())
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("slice source did not end")
	}
}

func TestLoopSourceWraps(t *testing.T) {
	s := NewLoopSource([]Entry{{Gap: 1}, {Gap: 2}})
	for i := 0; i < 10; i++ {
		e, ok := s.Next()
		if !ok {
			t.Fatal("loop source ended")
		}
		want := sim.Cycle(i%2 + 1)
		if e.Gap != want {
			t.Fatalf("loop entry %d gap %d, want %d", i, e.Gap, want)
		}
	}
}

func TestLoopSourceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty loop source accepted")
		}
	}()
	NewLoopSource(nil)
}

func TestConcat(t *testing.T) {
	c := NewConcat(
		NewSliceSource([]Entry{{Gap: 1}}),
		NewSliceSource([]Entry{{Gap: 2}, {Gap: 3}}),
	)
	var gaps []sim.Cycle
	for {
		e, ok := c.Next()
		if !ok {
			break
		}
		gaps = append(gaps, e.Gap)
	}
	if len(gaps) != 3 || gaps[0] != 1 || gaps[2] != 3 {
		t.Fatalf("concat produced %v", gaps)
	}
}

func TestBenchmarkProfilesValid(t *testing.T) {
	for _, p := range Benchmarks() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(Benchmarks()) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11 (SPECInt 2006 + apache)", len(Benchmarks()))
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("ProfileByName(mcf) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nonexistent"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	cases := []Profile{
		{},
		{Name: "x", BurstLen: 0, FootprintLines: 1},
		{Name: "x", BurstLen: 1, FootprintLines: 0},
		{Name: "x", BurstLen: 1, FootprintLines: 1, ReuseProb: 1.5},
		{Name: "x", BurstLen: 1, FootprintLines: 1, WriteFrac: -0.1},
		{Name: "x", BurstLen: 1, FootprintLines: 1, BlockingFrac: 2},
	}
	for i, p := range cases {
		if p.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a := mustGenerator(p, sim.NewRNG(5))
	b := mustGenerator(p, sim.NewRNG(5))
	for i := 0; i < 1000; i++ {
		ea, _ := a.Next()
		eb, _ := b.Next()
		if ea != eb {
			t.Fatalf("same-seed generators diverged at entry %d", i)
		}
	}
}

func TestGeneratorAddressesWithinFootprint(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g := mustGenerator(p, sim.NewRNG(7))
	limit := p.FootprintLines * 64
	for i := 0; i < 10000; i++ {
		e, _ := g.Next()
		if e.Addr >= limit {
			t.Fatalf("address %#x outside footprint %#x", e.Addr, limit)
		}
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	p, _ := ProfileByName("bzip") // WriteFrac 0.35
	g := mustGenerator(p, sim.NewRNG(11))
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		e, _ := g.Next()
		if e.Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.30 || frac > 0.40 {
		t.Fatalf("write fraction %.3f, want ~0.35", frac)
	}
}

func TestIntensityOrdering(t *testing.T) {
	// The suite's relative memory intensity must keep the paper's
	// structure: mcf and libqt are the heaviest, sjeng the lightest.
	order := SortedByIntensity()
	rank := map[string]int{}
	for i, n := range order {
		rank[n] = i
	}
	if rank["libqt"] > 2 || rank["mcf"] > 3 {
		t.Fatalf("memory hogs not at the top: %v", order)
	}
	if rank["sjeng"] < len(order)-3 {
		t.Fatalf("sjeng not near the bottom: %v", order)
	}
}

func TestCovertSenderBits(t *testing.T) {
	s := NewCovertSender(0b1011, 4, 100, 2, false)
	bits := s.Bits()
	want := []int{1, 1, 0, 1} // LSB first
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits %v, want %v", bits, want)
		}
	}
}

func TestCovertSenderOnePulsesEmitStores(t *testing.T) {
	s := NewCovertSender(0b1, 1, 100, 2, false)
	s.SetNow(10)
	e, ok := s.Next()
	if !ok || e.Write != true || e.Idle {
		t.Fatalf("one-bit pulse entry %+v ok=%v", e, ok)
	}
	// Addresses stride far apart so every store misses.
	e2, _ := s.Next()
	if e2.Addr-e.Addr < 1024*64 {
		t.Fatalf("stores too close: %#x then %#x", e.Addr, e2.Addr)
	}
}

func TestCovertSenderZeroPulsesIdle(t *testing.T) {
	s := NewCovertSender(0b10, 2, 100, 2, false)
	s.SetNow(10) // inside bit 0's pulse, which is 0
	e, ok := s.Next()
	if !ok || !e.Idle {
		t.Fatalf("zero-bit pulse entry %+v", e)
	}
	if e.Gap != 90 {
		t.Fatalf("idle gap %d, want 90 (rest of the pulse)", e.Gap)
	}
}

func TestCovertSenderEndsWithoutRepeat(t *testing.T) {
	s := NewCovertSender(0b11, 2, 100, 2, false)
	s.SetNow(250) // past both pulses
	if _, ok := s.Next(); ok {
		t.Fatal("sender did not end after its key")
	}
}

func TestCovertSenderRepeats(t *testing.T) {
	s := NewCovertSender(0b1, 1, 100, 2, true)
	s.SetNow(100_000)
	if _, ok := s.Next(); !ok {
		t.Fatal("repeating sender ended")
	}
}

func TestCovertSenderKeyLenBounds(t *testing.T) {
	for _, bad := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("keyLen %d accepted", bad)
				}
			}()
			NewCovertSender(1, bad, 100, 1, false)
		}()
	}
}

func TestGeneratorGapsPositiveProperty(t *testing.T) {
	p, _ := ProfileByName("astar")
	g := mustGenerator(p, sim.NewRNG(13))
	check := func(_ uint8) bool {
		e, ok := g.Next()
		return ok && e.Gap >= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhasedSourceAlternates(t *testing.T) {
	busy := NewLoopSource([]Entry{{Gap: 1, Addr: 0x1000}})
	quiet := NewLoopSource([]Entry{{Gap: 1, Addr: 0x2000}})
	ps := NewPhasedSource(busy, quiet, 1000)
	ps.SetNow(10)
	if e, _ := ps.Next(); e.Addr != 0x1000 {
		t.Fatal("phase 0 should serve the busy source")
	}
	ps.SetNow(1010)
	if e, _ := ps.Next(); e.Addr != 0x2000 {
		t.Fatal("phase 1 should serve the quiet source")
	}
	if ps.PhaseAt(500) != 0 || ps.PhaseAt(1500) != 1 || ps.PhaseAt(2500) != 0 {
		t.Fatal("PhaseAt wrong")
	}
}

func TestPhasedSourceClipsGapsAtBoundary(t *testing.T) {
	quietEntries := []Entry{{Gap: 100000, Idle: true}}
	ps := NewPhasedSource(NewLoopSource(quietEntries), NewLoopSource(quietEntries), 1000)
	ps.SetNow(900)
	e, _ := ps.Next()
	if e.Gap > 100 {
		t.Fatalf("gap %d crosses the phase boundary", e.Gap)
	}
}

func TestPhasedSourceZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period accepted")
		}
	}()
	NewPhasedSource(NewLoopSource([]Entry{{}}), NewLoopSource([]Entry{{}}), 0)
}

// mustGenerator is NewGenerator panicking on error, for tests using the
// built-in (known valid) profiles.
func mustGenerator(p Profile, rng *sim.RNG) *Generator {
	g, err := NewGenerator(p, rng)
	if err != nil {
		panic(err)
	}
	return g
}
