package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hardens the recorded-trace decoder against malformed
// input: whatever bytes arrive, it must return an error or a valid slice,
// never panic or over-allocate.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var valid bytes.Buffer
	WriteTrace(&valid, []Entry{
		{Gap: 7, Addr: 0x1000, Write: true},
		{Gap: 0, Addr: 0x2000, Blocking: true},
		{Gap: 4096, Idle: true},
	})
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CAMT"))
	f.Add([]byte{'C', 'A', 'M', 'T', 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	truncated := valid.Bytes()
	f.Add(truncated[:len(truncated)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// On success, re-encoding must round-trip.
		var buf bytes.Buffer
		if werr := WriteTrace(&buf, entries); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		again, rerr := ReadTrace(&buf)
		if rerr != nil {
			t.Fatalf("re-decode failed: %v", rerr)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip changed length: %d -> %d", len(entries), len(again))
		}
		for i := range entries {
			if again[i] != entries[i] {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}
