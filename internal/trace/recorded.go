package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"camouflage/internal/sim"
)

// The recorded trace format is a compact binary stream:
//
//	magic "CAMT" | version u8 | count u64 | entries...
//
// each entry: gap uvarint | addr uvarint | flags u8
// (flag bits: 1 = write, 2 = blocking, 4 = idle).
//
// It exists so workloads captured from one run (or produced by external
// tools) can be replayed bit-exactly — the same role GEM5 trace files play
// for the paper's simulator.

var traceMagic = [4]byte{'C', 'A', 'M', 'T'}

const traceVersion = 1

const (
	flagWrite    = 1 << 0
	flagBlocking = 1 << 1
	flagIdle     = 1 << 2
)

// WriteTrace encodes entries to w in the recorded trace format.
func WriteTrace(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(entries)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, e := range entries {
		n = binary.PutUvarint(buf[:], uint64(e.Gap))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], e.Addr)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		var flags byte
		if e.Write {
			flags |= flagWrite
		}
		if e.Blocking {
			flags |= flagBlocking
		}
		if e.Idle {
			flags |= flagIdle
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a recorded trace from r.
func ReadTrace(r io.Reader) ([]Entry, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("trace: not a recorded trace (bad magic)")
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxEntries = 1 << 30
	if count > maxEntries {
		return nil, fmt.Errorf("trace: implausible entry count %d", count)
	}
	// The count is untrusted input: cap the preallocation and let append
	// grow the slice as entries actually decode, so a forged header
	// cannot trigger a giant allocation.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	entries := make([]Entry, 0, capHint)
	for i := uint64(0); i < count; i++ {
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d gap: %w", i, err)
		}
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d addr: %w", i, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d flags: %w", i, err)
		}
		entries = append(entries, Entry{
			Gap:      sim.Cycle(gap),
			Addr:     addr,
			Write:    flags&flagWrite != 0,
			Blocking: flags&flagBlocking != 0,
			Idle:     flags&flagIdle != 0,
		})
	}
	return entries, nil
}

// Recorder wraps a Source, passing entries through while keeping a copy —
// capture a synthetic workload once, then replay it bit-exactly with
// NewSliceSource/NewLoopSource or persist it with WriteTrace.
type Recorder struct {
	src      Source
	Recorded []Entry
}

// NewRecorder returns a recording pass-through around src.
func NewRecorder(src Source) *Recorder {
	return &Recorder{src: src}
}

// Next implements Source.
func (r *Recorder) Next() (Entry, bool) {
	e, ok := r.src.Next()
	if ok {
		r.Recorded = append(r.Recorded, e)
	}
	return e, ok
}

// SetNow forwards wall-clock time to clocked sources.
func (r *Recorder) SetNow(now sim.Cycle) {
	if c, ok := r.src.(Clocked); ok {
		c.SetNow(now)
	}
}

// Capture pulls up to n entries from src into a slice (for generators,
// which are infinite, n bounds the capture; finite sources may end
// earlier).
func Capture(src Source, n int) []Entry {
	out := make([]Entry, 0, n)
	for len(out) < n {
		e, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}
