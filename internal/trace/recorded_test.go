package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"camouflage/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	entries := []Entry{
		{Gap: 10, Addr: 0x1000, Write: true},
		{Gap: 0, Addr: 0xFFFF_FFFF_0000, Blocking: true},
		{Gap: 4096, Idle: true},
		{Gap: 1, Addr: 64},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestTraceRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %d entries", err, len(got))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("not a trace")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte("CAMT"))
	buf.WriteByte(99)
	buf.WriteByte(0)
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestReadTraceTruncated(t *testing.T) {
	entries := []Entry{{Gap: 100, Addr: 0x4000}}
	var buf bytes.Buffer
	WriteTrace(&buf, entries)
	raw := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	check := func(gaps []uint32, addrs []uint64, flags []uint8) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(flags) < n {
			n = len(flags)
		}
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			entries[i] = Entry{
				Gap:      sim.Cycle(gaps[i]),
				Addr:     addrs[i],
				Write:    flags[i]&1 != 0,
				Blocking: flags[i]&2 != 0,
				Idle:     flags[i]&4 != 0,
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, entries); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderPassThrough(t *testing.T) {
	src := NewSliceSource([]Entry{{Gap: 1}, {Gap: 2}})
	rec := NewRecorder(src)
	var gaps []sim.Cycle
	for {
		e, ok := rec.Next()
		if !ok {
			break
		}
		gaps = append(gaps, e.Gap)
	}
	if len(rec.Recorded) != 2 || rec.Recorded[0].Gap != 1 {
		t.Fatalf("recorded %v", rec.Recorded)
	}
	if len(gaps) != 2 {
		t.Fatalf("passed through %v", gaps)
	}
}

func TestRecorderForwardsClock(t *testing.T) {
	sender := NewCovertSender(1, 1, 100, 2, false)
	rec := NewRecorder(sender)
	rec.SetNow(10)
	e, ok := rec.Next()
	if !ok || !e.Write {
		t.Fatalf("clocked entry %+v via recorder", e)
	}
}

func TestCaptureAndReplayMatchesGenerator(t *testing.T) {
	p, _ := ProfileByName("gcc")
	captured := Capture(mustGenerator(p, sim.NewRNG(5)), 500)
	if len(captured) != 500 {
		t.Fatalf("captured %d", len(captured))
	}
	// A fresh same-seed generator must match the capture exactly.
	g := mustGenerator(p, sim.NewRNG(5))
	replay := NewSliceSource(captured)
	for i := 0; i < 500; i++ {
		a, _ := g.Next()
		b, _ := replay.Next()
		if a != b {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestCaptureFiniteSource(t *testing.T) {
	got := Capture(NewSliceSource([]Entry{{Gap: 1}}), 10)
	if len(got) != 1 {
		t.Fatalf("captured %d from finite source", len(got))
	}
}
