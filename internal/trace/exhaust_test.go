package trace

import "testing"

// TestExhaustionIsTerminal pins the Source contract the kernel's idle
// fast path depends on: after the first ok == false, every further Next
// keeps returning ok == false with a zero entry and no side effects.
// The core stops polling a source once it reports end-of-trace, so a
// source violating this would behave differently under fast-path and
// cycle-stepped runs.
func TestExhaustionIsTerminal(t *testing.T) {
	entries := []Entry{{Gap: 3, Addr: 64}, {Idle: true, Gap: 5}}

	covert := NewCovertSender(0b10, 2, 16, 2, false)
	covert.SetNow(1000) // past both pulses: the transmission is over

	phased := NewPhasedSource(NewSliceSource(entries), NewSliceSource(entries), 128)

	sources := map[string]Source{
		"slice":    NewSliceSource(entries),
		"concat":   NewConcat(NewSliceSource(entries), NewSliceSource(entries)),
		"recorder": NewRecorder(NewSliceSource(entries)),
		"covert":   covert,
		"phased":   phased,
	}
	for name, src := range sources {
		drained := 0
		for ; drained < 1000; drained++ {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if drained == 1000 {
			t.Fatalf("%s: did not exhaust", name)
		}
		for i := 0; i < 10; i++ {
			e, ok := src.Next()
			if ok {
				t.Fatalf("%s: revived on Next %d after exhaustion", name, i)
			}
			if e != (Entry{}) {
				t.Fatalf("%s: non-zero entry %+v after exhaustion", name, e)
			}
		}
	}
}
