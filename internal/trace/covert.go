package trace

import "camouflage/internal/sim"

// CovertSender implements the paper's Algorithm 1 ("Generate Covert
// Channel") as a wall-clock-driven trace source. For each key bit the
// malicious program either generates cache-missing stores to successive
// cache lines for PULSE cycles (bit = 1) or does nothing for PULSE cycles
// (bit = 0), encoding the key in memory-traffic burstiness. Algorithm 1's
// loop condition is elapsed time, so the sender implements Clocked: the
// number of stores a one-pulse lands is whatever the machine can issue in
// PULSE cycles, exactly like the real program.
type CovertSender struct {
	key    uint64
	keyLen int
	pulse  sim.Cycle
	gap    sim.Cycle
	repeat bool

	now  sim.Cycle
	line uint64 // NextCacheLine
	done bool
}

// missStride is the line stride between consecutive covert stores; 1024
// lines (64 KB) guarantees every store misses the LLC.
const missStride = 1 << 10

// NewCovertSender returns an Algorithm 1 sender transmitting keyLen bits
// of key (LSB first), with the given pulse duration. gap is the issue
// spacing of the store loop (1–2 reproduces the tightest loop the
// algorithm can run). If repeat is set, the key retransmits forever;
// otherwise the source ends after keyLen pulses.
func NewCovertSender(key uint64, keyLen int, pulse, gap sim.Cycle, repeat bool) *CovertSender {
	if keyLen <= 0 || keyLen > 64 {
		panic("trace: covert key length out of range")
	}
	if pulse == 0 {
		panic("trace: covert pulse must be positive")
	}
	if gap == 0 {
		gap = 1
	}
	return &CovertSender{key: key, keyLen: keyLen, pulse: pulse, gap: gap, repeat: repeat}
}

// Bit returns the i-th transmitted bit.
func (s *CovertSender) Bit(i int) int {
	return int(s.key >> (uint(i) % uint(s.keyLen)) & 1)
}

// Bits returns the full transmitted bit vector.
func (s *CovertSender) Bits() []int {
	bits := make([]int, s.keyLen)
	for i := range bits {
		bits[i] = s.Bit(i)
	}
	return bits
}

// SetNow implements Clocked.
func (s *CovertSender) SetNow(now sim.Cycle) { s.now = now }

// Next implements Source. The current key bit is determined by wall-clock
// time: one-pulses emit stores spaced gap cycles apart; zero-pulses emit a
// single idle entry covering the rest of the pulse.
func (s *CovertSender) Next() (Entry, bool) {
	if s.done {
		return Entry{}, false
	}
	pulseIdx := uint64(s.now / s.pulse)
	if !s.repeat && pulseIdx >= uint64(s.keyLen) {
		s.done = true
		return Entry{}, false
	}
	if s.Bit(int(pulseIdx%uint64(s.keyLen))) == 1 {
		addr := s.line * 64
		s.line += missStride
		return Entry{Gap: s.gap, Addr: addr, Write: true}, true
	}
	remaining := s.pulse - s.now%s.pulse
	return Entry{Gap: remaining, Idle: true}, true
}
