// Package suite is the canonical experiment catalogue: every table and
// figure of the paper's evaluation, expressed as campaign jobs. It
// exists as a package (rather than private helpers in cmd/experiments)
// so that every binary that must agree on the job list — the
// experiments supervisor, its re-exec'd process workers, and remote
// cmd/camworker fleet members — builds it from the same code. The
// distributed handshake authenticates with campaign.JobsHash over this
// list; two binaries built from the same tree with the same parameters
// therefore land on the same fleet hash.
package suite

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"camouflage/internal/campaign"
	"camouflage/internal/harness"
	"camouflage/internal/obs"
	"camouflage/internal/sim"
)

// Experiment is one emission unit: a named result assembled from one or
// more campaign jobs (sweeps fan out into a job per point and merge at
// emission).
type Experiment struct {
	Name string
	Jobs []campaign.Job
}

// Params are the knobs that shape job specs. Every binary in a fleet
// must build the suite from identical Params or the fleet hashes (and
// the per-job spec hashes behind them) diverge and the handshake is
// refused.
type Params struct {
	Cycles    sim.Cycle
	Seed      uint64
	Adversary string // fig9 adversary benchmark
	UseGA     bool   // refine BDC configurations with the online GA
}

// Jobs flattens experiments into the campaign job list, preserving
// canonical order.
func Jobs(exps []Experiment) []campaign.Job {
	var all []campaign.Job
	for _, e := range exps {
		all = append(all, e.Jobs...)
	}
	return all
}

// Select resolves a comma-separated -run list against the canonical
// experiment set, preserving canonical order.
func Select(exps []Experiment, run string) ([]Experiment, error) {
	if run == "all" || run == "" {
		return exps, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	var out []Experiment
	for _, e := range exps {
		if want[e.Name] {
			out = append(out, e)
			delete(want, e.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		valid := make([]string, len(exps))
		for i, e := range exps {
			valid[i] = e.Name
		}
		return nil, fmt.Errorf("experiments: unknown experiment(s) %s (valid: %s, all)",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return out, nil
}

// Build returns the canonical experiment list. Each job's spec encodes
// every parameter that shapes its result, so the journal's spec hash
// invalidates stale records when a flag changes.
func Build(p Params) []Experiment {
	c, seed, adversary, useGA := p.Cycles, p.Seed, p.Adversary, p.UseGA
	base := fmt.Sprintf("cycles=%d seed=%d", c, seed)
	job := func(name, spec string, fn func(ctx context.Context) (*harness.Table, error)) campaign.Job {
		return campaign.Job{
			Name: name,
			Spec: spec,
			Run: func(ctx context.Context, attempt int) (*harness.Table, error) {
				ctx = obs.WithLabel(ctx, name)
				var table *harness.Table
				err := harness.Protect(name, func() error {
					var e error
					table, e = fn(ctx)
					return e
				})
				return table, err
			},
		}
	}
	single := func(name, spec string, fn func(ctx context.Context) (*harness.Table, error)) Experiment {
		return Experiment{Name: name, Jobs: []campaign.Job{job(name, spec, fn)}}
	}
	tab := func(r interface{ Table() *harness.Table }, err error) (*harness.Table, error) {
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}

	exps := []Experiment{
		single("table1", "static", func(ctx context.Context) (*harness.Table, error) {
			return harness.SchemeCapabilityTable(), nil
		}),
		single("table2", "static", func(ctx context.Context) (*harness.Table, error) {
			return harness.BaseConfigTable(), nil
		}),
		single("fig2", base+" bench=bzip", func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.TradeoffSpace(ctx, "bzip", c, seed))
		}),
		single("fig3", base+" bench=bzip", func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.ShapedDistributions(ctx, "bzip", c, seed))
		}),
		single("fig4", fmt.Sprintf("seed=%d key=0x2AAAAAAA bits=32", seed), func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.KeyDistortion(ctx, 0x2AAAAAAA, 32, seed))
		}),
		single("fig8", fmt.Sprintf("seed=%d victim=gcc coworker=astar pop=16 gens=10", seed), func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.GATimeline(ctx, "gcc", "astar", 16, 10, seed))
		}),
		single("fig9", base+" adversary="+adversary, func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.ReturnTimeDifference(ctx, adversary, c, seed))
		}),
		single("fig10a", base+" victim=astar coworker=mcf", func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.RespCPerformance(ctx, "astar", "mcf", c, seed))
		}),
		single("fig10b", base+" victim=mcf coworker=astar", func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.RespCPerformance(ctx, "mcf", "astar", c, seed))
		}),
		single("fig11", base, func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.DistributionAccuracy(ctx, c, seed))
		}),
		single("fig12", base, func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.ReqCSpeedup(ctx, c, seed))
		}),
		single("fig13a", fmt.Sprintf("%s bench=astar ga=%t", base, useGA), func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.BDCComparison(ctx, "astar", useGA, c, seed))
		}),
		single("fig13b", fmt.Sprintf("%s bench=mcf ga=%t", base, useGA), func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.BDCComparison(ctx, "mcf", useGA, c, seed))
		}),
		single("fig14", fmt.Sprintf("seed=%d key=0x2AAAAAAA bits=32", seed), func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.CovertChannel(ctx, 0x2AAAAAAA, 32, seed))
		}),
		single("fig15", fmt.Sprintf("seed=%d key=0x01010101 bits=32", seed), func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.CovertChannel(ctx, 0x01010101, 32, seed))
		}),
		single("mi", base+" bench=astar", func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.MutualInformation(ctx, "astar", c, seed))
		}),
		single("headline", base, func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.HeadlineSpeedups(ctx, c, seed))
		}),
		scalabilitySweep(c, seed, job),
		single("epochrate", base+" bench=gcc", func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.EpochRateComparison(ctx, "gcc", c, seed))
		}),
		single("windowleak", base+" bench=bzip", func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.WithinWindowLeakage(ctx, "bzip", nil, c, seed))
		}),
		single("phasedetect", fmt.Sprintf("cycles=%d seed=%d", 2*c, seed), func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.PhaseDetection(ctx, 2*c, seed))
		}),
		single("mitts", base, func(ctx context.Context) (*harness.Table, error) {
			return tab(harness.MITTSFairness(ctx, c, seed))
		}),
		single("robustness", base, func(ctx context.Context) (*harness.Table, error) {
			r, err := harness.Robustness(ctx, c, seed)
			if err != nil {
				return nil, err
			}
			if r.Failed() {
				// The measured matrix is still worth showing; the verdict
				// is fatal (deterministic from the seed, retrying cannot
				// change it).
				return r.Table(), campaign.Fatal(errors.New("some fault classes missed their expectation"))
			}
			return r.Table(), nil
		}),
	}
	return exps
}

// scalabilitySweep fans the §II-B scalability experiment into one job
// per core count — each point derives its sources from seed+cores*31 and
// is independent, so the sweep parallelizes and resumes point-by-point;
// emission merges the rows back into the canonical single table.
func scalabilitySweep(c sim.Cycle, seed uint64, job func(name, spec string, fn func(ctx context.Context) (*harness.Table, error)) campaign.Job) Experiment {
	e := Experiment{Name: "scalability"}
	for _, n := range []int{4, 8, 16} {
		n := n
		e.Jobs = append(e.Jobs, job(
			fmt.Sprintf("scalability/%d", n),
			fmt.Sprintf("cycles=%d seed=%d cores=%d", c, seed, n),
			func(ctx context.Context) (*harness.Table, error) {
				r, err := harness.Scalability(ctx, []int{n}, c, seed)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}))
	}
	return e
}
