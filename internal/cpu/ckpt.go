package cpu

import (
	"camouflage/internal/ckpt"
	"camouflage/internal/mem"
	"camouflage/internal/sim"
	"camouflage/internal/trace"
)

// Snapshot serializes the core's issue state, its held/pending requests,
// its counters, its cache and its trace source. The held miss and
// writebacks are owned here (they were refused downstream), so they are
// serialized by value.
func (c *Core) Snapshot(e *ckpt.Encoder) {
	e.U64(uint64(c.entry.Gap))
	e.U64(c.entry.Addr)
	e.Bool(c.entry.Write)
	e.Bool(c.entry.Blocking)
	e.Bool(c.entry.Idle)
	e.Bool(c.haveEntry)
	e.U64(uint64(c.computeLeft))
	e.Bool(c.finished)
	e.U64(c.blockedOn)
	mem.SnapshotRequest(e, c.heldMiss)
	e.Bool(c.heldBlocking)
	mem.SnapshotRequests(e, c.pendingWB)
	e.U64(uint64(c.stats.Cycles))
	e.U64(c.stats.Work)
	e.U64(c.stats.Refs)
	e.U64(uint64(c.stats.MemStallCycles))
	e.U64(uint64(c.stats.ShaperStallCycles))
	e.U64(c.stats.Responses)
	e.U64(c.stats.FakeResponses)
	c.cache.Snapshot(e)
	trace.SnapshotSource(e, c.src)
}

// Restore implements ckpt.Stater.
func (c *Core) Restore(d *ckpt.Decoder) error {
	c.entry.Gap = sim.Cycle(d.U64())
	c.entry.Addr = d.U64()
	c.entry.Write = d.Bool()
	c.entry.Blocking = d.Bool()
	c.entry.Idle = d.Bool()
	c.haveEntry = d.Bool()
	c.computeLeft = sim.Cycle(d.U64())
	c.finished = d.Bool()
	c.blockedOn = d.U64()
	var err error
	if c.heldMiss, err = mem.RestoreRequest(d); err != nil {
		return err
	}
	c.heldBlocking = d.Bool()
	if c.pendingWB, err = mem.RestoreRequests(d); err != nil {
		return err
	}
	c.stats.Cycles = sim.Cycle(d.U64())
	c.stats.Work = d.U64()
	c.stats.Refs = d.U64()
	c.stats.MemStallCycles = sim.Cycle(d.U64())
	c.stats.ShaperStallCycles = sim.Cycle(d.U64())
	c.stats.Responses = d.U64()
	c.stats.FakeResponses = d.U64()
	if err := c.cache.Restore(d); err != nil {
		return err
	}
	if err := trace.RestoreSource(d, c.src); err != nil {
		return err
	}
	return d.Err()
}
