package cpu

import (
	"testing"

	"camouflage/internal/mem"
	"camouflage/internal/sim"
	"camouflage/internal/trace"
)

// echoPort accepts requests and lets the test deliver responses manually.
type echoPort struct {
	sent []*mem.Request
	full bool
}

func (p *echoPort) TrySend(_ sim.Cycle, req *mem.Request) bool {
	if p.full {
		return false
	}
	p.sent = append(p.sent, req)
	return true
}

func newCore(entries []trace.Entry) (*Core, *echoPort) {
	var id uint64
	c := mustNew(0, DefaultConfig(), trace.NewSliceSource(entries), &id)
	p := &echoPort{}
	c.SetOut(p)
	return c, p
}

func run(c *Core, from, to sim.Cycle) {
	for now := from; now <= to; now++ {
		c.Tick(now)
	}
}

func TestComputeOnlyProgress(t *testing.T) {
	c, p := newCore([]trace.Entry{{Gap: 50, Idle: true}})
	run(c, 1, 100)
	if !c.Finished() {
		t.Fatal("finite trace did not finish")
	}
	if len(p.sent) != 0 {
		t.Fatal("idle entry issued memory traffic")
	}
	if c.Stats().Work < 50 {
		t.Fatalf("work %d, want >= 50", c.Stats().Work)
	}
}

func TestMissIssuedDownstream(t *testing.T) {
	c, p := newCore([]trace.Entry{{Gap: 0, Addr: 0x10000}})
	run(c, 1, 10)
	if len(p.sent) != 1 {
		t.Fatalf("sent %d requests, want 1", len(p.sent))
	}
	if p.sent[0].Core != 0 || p.sent[0].Op != mem.Read {
		t.Fatalf("request %+v", p.sent[0])
	}
}

func TestBlockingLoadStallsUntilResponse(t *testing.T) {
	c, p := newCore([]trace.Entry{
		{Gap: 0, Addr: 0x10000, Blocking: true},
		{Gap: 0, Addr: 0x20000},
	})
	run(c, 1, 50)
	if len(p.sent) != 1 {
		t.Fatalf("core ran past a blocking load: %d requests", len(p.sent))
	}
	stallBefore := c.Stats().MemStallCycles
	if stallBefore == 0 {
		t.Fatal("no memory stalls counted while blocked")
	}
	// Deliver the response; the second access must then issue.
	resp := p.sent[0]
	resp.Op = mem.Read
	c.TrySend(51, resp)
	run(c, 52, 80)
	if len(p.sent) != 2 {
		t.Fatal("core did not resume after response")
	}
}

func TestNonBlockingLoadsOverlap(t *testing.T) {
	entries := make([]trace.Entry, 4)
	for i := range entries {
		entries[i] = trace.Entry{Gap: 0, Addr: uint64(i+1) * 0x10000}
	}
	c, p := newCore(entries)
	run(c, 1, 20)
	if len(p.sent) != 4 {
		t.Fatalf("non-blocking misses did not overlap: %d outstanding", len(p.sent))
	}
}

func TestMSHRLimitStallsCore(t *testing.T) {
	cfg := DefaultConfig()
	n := cfg.Cache.MSHRs + 4
	entries := make([]trace.Entry, n)
	for i := range entries {
		entries[i] = trace.Entry{Gap: 0, Addr: uint64(i+1) * 0x10000}
	}
	var id uint64
	c := mustNew(0, cfg, trace.NewSliceSource(entries), &id)
	p := &echoPort{}
	c.SetOut(p)
	run(c, 1, 100)
	if len(p.sent) != cfg.Cache.MSHRs {
		t.Fatalf("issued %d, want MSHR limit %d", len(p.sent), cfg.Cache.MSHRs)
	}
	// Respond to one; exactly one more miss must issue.
	c.TrySend(101, p.sent[0])
	run(c, 102, 150)
	if len(p.sent) != cfg.Cache.MSHRs+1 {
		t.Fatalf("issued %d after one response", len(p.sent))
	}
}

func TestShaperBackpressureStallsCore(t *testing.T) {
	c, p := newCore([]trace.Entry{{Gap: 0, Addr: 0x10000}, {Gap: 0, Addr: 0x20000}})
	p.full = true
	run(c, 1, 30)
	if c.Stats().ShaperStallCycles == 0 {
		t.Fatal("no shaper stalls counted under backpressure")
	}
	p.full = false
	run(c, 31, 60)
	if len(p.sent) != 2 {
		t.Fatalf("requests lost under backpressure: %d", len(p.sent))
	}
}

func TestFakeResponsesDropped(t *testing.T) {
	c, _ := newCore([]trace.Entry{{Gap: 100, Idle: true}})
	c.TrySend(1, &mem.Request{ID: 999, Fake: true})
	st := c.Stats()
	if st.FakeResponses != 1 || st.Responses != 0 {
		t.Fatalf("fake response accounting: %+v", st)
	}
}

func TestOnResponseHook(t *testing.T) {
	c, p := newCore([]trace.Entry{{Gap: 0, Addr: 0x10000}})
	var hooked []*mem.Request
	c.OnResponse = func(_ sim.Cycle, resp *mem.Request) { hooked = append(hooked, resp) }
	run(c, 1, 10)
	c.TrySend(20, p.sent[0])
	if len(hooked) != 1 {
		t.Fatal("OnResponse hook not called")
	}
	c.TrySend(21, &mem.Request{Fake: true})
	if len(hooked) != 1 {
		t.Fatal("OnResponse called for fake response")
	}
}

func TestIPCAccounting(t *testing.T) {
	c, _ := newCore([]trace.Entry{{Gap: 10, Idle: true}})
	run(c, 1, 10)
	st := c.Stats()
	if st.Cycles != 10 {
		t.Fatalf("cycles %d", st.Cycles)
	}
	if st.IPC() <= 0 || st.IPC() > 1 {
		t.Fatalf("IPC %v", st.IPC())
	}
}

func TestAlphaAccounting(t *testing.T) {
	c, _ := newCore([]trace.Entry{{Gap: 0, Addr: 0x10000, Blocking: true}})
	run(c, 1, 100)
	st := c.Stats()
	if st.Alpha() <= 0.5 {
		t.Fatalf("blocked core alpha %v, want > 0.5", st.Alpha())
	}
}

func TestWritebackDrains(t *testing.T) {
	// Fill one set with dirty lines, then evict: the writeback must
	// eventually reach the downstream port.
	cfg := DefaultConfig()
	numSets := cfg.Cache.SizeBytes / cfg.Cache.LineBytes / uint64(cfg.Cache.Ways)
	stride := numSets * cfg.Cache.LineBytes
	var entries []trace.Entry
	for w := 0; w <= cfg.Cache.Ways; w++ {
		entries = append(entries, trace.Entry{Gap: 0, Addr: uint64(w) * stride, Write: true})
	}
	var id uint64
	c := mustNew(0, cfg, trace.NewSliceSource(entries), &id)
	p := &echoPort{}
	c.SetOut(p)
	for now := sim.Cycle(1); now <= 2000; now++ {
		c.Tick(now)
		// Echo read fills back immediately so the trace advances.
		for _, r := range p.sent {
			if r.Op == mem.Read && r.DeliveredAt == 0 {
				c.TrySend(now, r)
			}
		}
	}
	wbs := 0
	for _, r := range p.sent {
		if r.Op == mem.Write {
			wbs++
		}
	}
	if wbs == 0 {
		t.Fatal("no writeback reached the memory system")
	}
}

func TestClockedSourceReceivesTime(t *testing.T) {
	sender := trace.NewCovertSender(0b1, 1, 100, 2, false)
	var id uint64
	c := mustNew(0, DefaultConfig(), sender, &id)
	p := &echoPort{}
	c.SetOut(p)
	for now := sim.Cycle(1); now <= 300; now++ {
		c.Tick(now)
		for _, r := range p.sent {
			if r.DeliveredAt == 0 {
				c.TrySend(now, r)
			}
		}
	}
	if len(p.sent) == 0 {
		t.Fatal("clocked covert sender issued nothing")
	}
	if !c.Finished() {
		t.Fatal("covert sender did not finish after its pulses")
	}
}

// mustNew is New panicking on error, for tests whose configs are known
// valid.
func mustNew(id int, cfg Config, src trace.Source, nextID *uint64) *Core {
	c, err := New(id, cfg, src, nextID)
	if err != nil {
		panic(err)
	}
	return c
}
