// Package cpu implements the trace-driven processor core model. The
// paper's evaluation uses a 4-wide out-of-order core with a 128-entry
// instruction window; what matters for every experiment is how memory
// latency converts into lost progress, which this model captures with
// three mechanisms: a bounded set of outstanding misses (the cache's
// MSHRs), blocking (dependent) loads the core cannot run past, and
// backpressure from the request shaper (the Camouflage stall signal).
//
// Progress is measured in work units: one unit per compute cycle consumed
// plus one per memory reference issued. Running the same trace alone and
// shared gives the slowdown metric the paper reports.
package cpu

import (
	"camouflage/internal/cache"
	"camouflage/internal/mem"
	"camouflage/internal/sim"
	"camouflage/internal/trace"
)

// Config sizes a core.
type Config struct {
	// Cache is the core's private LLC.
	Cache cache.Config
	// MaxPendingWB bounds buffered dirty writebacks before the core
	// stalls (a small store buffer).
	MaxPendingWB int
}

// DefaultConfig returns the paper's core configuration.
func DefaultConfig() Config {
	return Config{Cache: cache.DefaultL2(), MaxPendingWB: 8}
}

// Stats aggregates a core's progress and stall accounting.
type Stats struct {
	Cycles sim.Cycle
	// Work counts committed work units (compute cycles + references).
	Work uint64
	// Refs counts memory references issued to the cache.
	Refs uint64
	// MemStallCycles counts cycles lost to blocking loads or full MSHRs
	// (the numerator of MISE's alpha).
	MemStallCycles sim.Cycle
	// ShaperStallCycles counts cycles the request shaper refused traffic.
	ShaperStallCycles sim.Cycle
	// Responses counts real responses received.
	Responses uint64
	// FakeResponses counts camouflage responses received (and dropped).
	FakeResponses uint64
}

// IPC returns work units per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Work) / float64(s.Cycles)
}

// Alpha returns MISE's memory-stall fraction.
func (s Stats) Alpha() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.MemStallCycles) / float64(s.Cycles)
}

// Core is one simulated processor core.
type Core struct {
	id    int
	cfg   Config
	src   trace.Source
	clock trace.Clocked // non-nil when src is wall-clock driven
	cache *cache.Cache
	out   mem.ReqPort

	// current entry state
	entry       trace.Entry
	haveEntry   bool
	computeLeft sim.Cycle
	finished    bool

	// blockedOn is the request ID of a blocking load in flight, 0 if none.
	blockedOn uint64

	// pool, when set, receives every delivered response for reuse. The
	// core is the final consumer of the response path: taps fire at NoC
	// injection and the cache drops its MSHR pointer inside Fill, so by
	// the end of TrySend nothing else may hold the request.
	pool *mem.Pool

	// heldMiss is a miss refused by the downstream port, retried each cycle.
	heldMiss *mem.Request
	// heldBlocking remembers whether heldMiss was a blocking load.
	heldBlocking bool
	pendingWB    []*mem.Request

	stats Stats

	// OnResponse, when set, observes every real response delivered to
	// this core (the adversary's response-latency probe).
	OnResponse func(now sim.Cycle, resp *mem.Request)
	// OnDelivered, when set, observes every response — real and fake —
	// after its DeliveredAt stamp is set. This is the lifecycle tracer's
	// hook: at delivery a request carries all seven hop timestamps, so a
	// single callback covers its whole life.
	OnDelivered func(now sim.Cycle, resp *mem.Request)
}

// New returns core id running src, with nextID supplying request IDs.
// An invalid cache configuration is reported as an error.
func New(id int, cfg Config, src trace.Source, nextID *uint64) (*Core, error) {
	llc, err := cache.New(cfg.Cache, id, nextID)
	if err != nil {
		return nil, err
	}
	c := &Core{
		id:    id,
		cfg:   cfg,
		src:   src,
		cache: llc,
	}
	c.clock, _ = src.(trace.Clocked)
	return c, nil
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// SetOut connects the core's miss stream to downstream (the request shaper
// input or the NoC injection queue).
func (c *Core) SetOut(out mem.ReqPort) { c.out = out }

// Cache exposes the core's LLC for statistics.
func (c *Core) Cache() *cache.Cache { return c.cache }

// SetPool makes the core recycle delivered responses into pool and its
// cache draw misses and writebacks from it. A nil pool (the default)
// keeps plain allocation.
func (c *Core) SetPool(pool *mem.Pool) {
	c.pool = pool
	c.cache.SetPool(pool)
}

// Stats returns a copy of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// ForEachRequest visits every request the core itself holds (a refused
// miss awaiting retry and buffered writebacks). Checkpoint restore uses
// it to rebuild MSHR aliasing.
func (c *Core) ForEachRequest(fn func(*mem.Request)) {
	if c.heldMiss != nil {
		fn(c.heldMiss)
	}
	for _, wb := range c.pendingWB {
		fn(wb)
	}
}

// Finished reports whether a finite trace has been fully consumed.
func (c *Core) Finished() bool { return c.finished }

// TrySend implements mem.RespPort: the response network delivers here.
// The core endpoint always accepts.
func (c *Core) TrySend(now sim.Cycle, resp *mem.Request) bool {
	resp.DeliveredAt = now
	if c.OnDelivered != nil {
		c.OnDelivered(now, resp)
	}
	if resp.Fake {
		c.stats.FakeResponses++
		c.pool.Put(resp)
		return true
	}
	c.stats.Responses++
	if c.OnResponse != nil {
		c.OnResponse(now, resp)
	}
	if resp.Op == mem.Read {
		c.cache.Fill(now, resp)
	}
	if c.blockedOn == resp.ID {
		c.blockedOn = 0
	}
	c.pool.Put(resp)
	return true
}

// NextWake implements sim.NextWaker. The core knows its next
// interesting cycle exactly in two long-lived states: a compute phase
// (nothing happens until the countdown ends) and a fully drained,
// finished trace (nothing ever happens again). A blocking load in
// flight also parks the core — the response network's own wake covers
// the delivery cycle, and the cycles in between are pure stall
// accounting. Anything touching a downstream port (held miss, pending
// writebacks) must retry every cycle because acceptance depends on
// another component's state.
func (c *Core) NextWake(now sim.Cycle) sim.Cycle {
	if c.heldMiss != nil || len(c.pendingWB) > 0 {
		return now + 1
	}
	if c.blockedOn != 0 {
		return sim.NeverWake
	}
	if c.computeLeft > 0 {
		return now + c.computeLeft + 1
	}
	if c.finished {
		return sim.NeverWake
	}
	return now + 1
}

// Skip implements sim.Skipper: bulk-apply the per-cycle accounting that
// to-from+1 idle Ticks would have done. The kernel only skips while
// NextWake's long-lived states hold, so exactly one of the branches
// below matches the whole span.
func (c *Core) Skip(from, to sim.Cycle) {
	n := to - from + 1
	c.stats.Cycles += n
	if c.blockedOn != 0 {
		c.stats.MemStallCycles += n
		return
	}
	if c.computeLeft > 0 {
		c.computeLeft -= n
		c.stats.Work += uint64(n)
	}
	// A finished core only counts cycles.
}

// Tick advances the core one cycle.
func (c *Core) Tick(now sim.Cycle) {
	c.stats.Cycles++

	// Drain one pending writeback per cycle; writebacks yield the port to
	// a held demand miss.
	if c.heldMiss == nil && len(c.pendingWB) > 0 {
		if c.out.TrySend(now, c.pendingWB[0]) {
			// Shift down instead of re-slicing so the backing array is
			// reused: the store buffer is bounded and hot, and a [1:]
			// walk would force a fresh allocation per append cycle.
			n := copy(c.pendingWB, c.pendingWB[1:])
			c.pendingWB[n] = nil
			c.pendingWB = c.pendingWB[:n]
		}
	}

	// Retry a miss the shaper refused.
	if c.heldMiss != nil {
		if !c.out.TrySend(now, c.heldMiss) {
			c.stats.ShaperStallCycles++
			return
		}
		if c.heldBlocking {
			c.blockedOn = c.heldMiss.ID
		}
		c.heldMiss = nil
	}

	// A blocking load in flight freezes the window.
	if c.blockedOn != 0 {
		c.stats.MemStallCycles++
		return
	}

	// Compute phase.
	if c.computeLeft > 0 {
		c.computeLeft--
		c.stats.Work++
		return
	}

	// Fetch the next reference if needed. A finished trace stays
	// finished — the source is not polled again, so an exhausted core's
	// tick is pure accounting and the kernel's fast path can skip it.
	if !c.haveEntry {
		if c.finished {
			return
		}
		if c.clock != nil {
			c.clock.SetNow(now)
		}
		e, ok := c.src.Next()
		if !ok {
			c.finished = true
			return
		}
		c.entry = e
		c.haveEntry = true
		if e.Gap > 0 {
			c.computeLeft = e.Gap
			c.computeLeft--
			c.stats.Work++
			return
		}
	}

	// Pure compute entries issue no reference.
	if c.entry.Idle {
		c.haveEntry = false
		return
	}

	// Too many buffered writebacks: stall the store path.
	if len(c.pendingWB) >= c.cfg.MaxPendingWB {
		c.stats.MemStallCycles++
		return
	}

	// Issue the reference to the cache.
	res, miss, wb := c.cache.Access(now, c.entry.Addr, c.entry.Write)
	switch res {
	case cache.Hit:
		c.stats.Refs++
		c.stats.Work++
		if c.entry.Blocking {
			// A dependent load pays the LLC hit latency.
			c.computeLeft += c.cfg.Cache.HitLatency
		}
		c.haveEntry = false
	case cache.MissIssued:
		if wb != nil {
			c.pendingWB = append(c.pendingWB, wb)
		}
		miss.Blocking = c.entry.Blocking
		c.stats.Refs++
		c.stats.Work++
		if !c.out.TrySend(now, miss) {
			c.heldMiss = miss
			c.heldBlocking = c.entry.Blocking
			c.stats.ShaperStallCycles++
		} else if c.entry.Blocking {
			c.blockedOn = miss.ID
		}
		c.haveEntry = false
	case cache.MissMerged:
		c.stats.Refs++
		c.stats.Work++
		if c.entry.Blocking && miss != nil {
			c.blockedOn = miss.ID
		}
		c.haveEntry = false
	case cache.Blocked:
		c.stats.MemStallCycles++
	}
}
