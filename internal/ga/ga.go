// Package ga implements the genetic algorithm the paper co-designs with
// Bi-directional Camouflage (§IV-C, Figure 8): a software runtime that
// searches the non-convex space of hardware bin configurations for one
// that minimizes multi-program slowdown while the shapers hold the traffic
// distributions fixed. The genome is the concatenated per-shaper credit
// arrays; fitness is the MISE-estimated average slowdown measured online.
package ga

import (
	"fmt"
	"sort"

	"camouflage/internal/sim"
)

// Genome is a flat vector of bin credit counts across all optimized
// shapers.
type Genome []int

// Clone copies the genome.
func (g Genome) Clone() Genome { return append(Genome(nil), g...) }

// Config tunes the search. The paper runs 20–30 children per generation
// for 20–30 generations with 20 000-cycle evaluations.
type Config struct {
	// GenomeLen is the number of genes (bins across shapers).
	GenomeLen int
	// Population is the number of children per generation.
	Population int
	// Generations is the number of generations to run.
	Generations int
	// Elite is how many best configurations survive unchanged.
	Elite int
	// MutationRate is the per-gene mutation probability.
	MutationRate float64
	// CreditMax bounds each gene (per-bin credits; bounded by the memory
	// bandwidth the controller can serve).
	CreditMax int
	// TotalMax bounds the sum of credits per shaper segment, 0 = no
	// bound. SegmentLen must divide GenomeLen when TotalMax is set.
	TotalMax   int
	SegmentLen int
	// Seeds are genomes injected into the initial population (clamped to
	// the bounds above) — e.g. the measured intrinsic distribution, so
	// the search starts from a sensible configuration.
	Seeds []Genome
	// OnGeneration, when set, runs before each generation's evaluations.
	// The online harness uses it for the per-program highest-priority-
	// mode profiling epochs of Figure 8.
	OnGeneration func(gen int)
}

// DefaultConfig returns the paper's GA shape for genomeLen genes.
func DefaultConfig(genomeLen int) Config {
	return Config{
		GenomeLen:    genomeLen,
		Population:   20,
		Generations:  20,
		Elite:        4,
		MutationRate: 0.1,
		CreditMax:    32,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.GenomeLen <= 0:
		return fmt.Errorf("ga: GenomeLen must be positive")
	case c.Population < 2:
		return fmt.Errorf("ga: Population must be at least 2")
	case c.Generations <= 0:
		return fmt.Errorf("ga: Generations must be positive")
	case c.Elite < 1 || c.Elite >= c.Population:
		return fmt.Errorf("ga: Elite must be in [1, Population)")
	case c.MutationRate < 0 || c.MutationRate > 1:
		return fmt.Errorf("ga: MutationRate out of [0,1]")
	case c.CreditMax <= 0:
		return fmt.Errorf("ga: CreditMax must be positive")
	}
	if c.TotalMax > 0 {
		if c.SegmentLen <= 0 || c.GenomeLen%c.SegmentLen != 0 {
			return fmt.Errorf("ga: SegmentLen %d must divide GenomeLen %d", c.SegmentLen, c.GenomeLen)
		}
	}
	return nil
}

// Fitness evaluates a genome; lower is better. Evaluations may be noisy
// (they are online measurements).
type Fitness func(g Genome) float64

// Result is the outcome of a search.
type Result struct {
	Best        Genome
	BestFitness float64
	// History holds the best fitness per generation.
	History []float64
	// Evaluations counts fitness calls.
	Evaluations int
}

// Run executes the search with randomness from rng.
func Run(cfg Config, fit Fitness, rng *sim.RNG) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	pop := make([]Genome, cfg.Population)
	for i := range pop {
		if i < len(cfg.Seeds) && len(cfg.Seeds[i]) == cfg.GenomeLen {
			pop[i] = cfg.Seeds[i].Clone()
			clampGenome(cfg, pop[i])
		} else {
			pop[i] = randomGenome(cfg, rng)
		}
	}

	type scored struct {
		g Genome
		f float64
	}
	var res Result
	for gen := 0; gen < cfg.Generations; gen++ {
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen)
		}
		scores := make([]scored, len(pop))
		for i, g := range pop {
			scores[i] = scored{g, fit(g)}
			res.Evaluations++
		}
		sort.SliceStable(scores, func(i, j int) bool { return scores[i].f < scores[j].f })
		res.History = append(res.History, scores[0].f)
		if res.Best == nil || scores[0].f < res.BestFitness {
			res.Best = scores[0].g.Clone()
			res.BestFitness = scores[0].f
		}

		// Selection, crossover, mutation (the SC block of Figure 8).
		next := make([]Genome, 0, cfg.Population)
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, scores[i].g.Clone())
		}
		for len(next) < cfg.Population {
			a := scores[rng.Intn(cfg.Elite+2)].g // bias toward the best
			b := scores[rng.Intn(len(scores)/2+1)].g
			child := crossover(a, b, rng)
			mutate(cfg, child, rng)
			clampGenome(cfg, child)
			next = append(next, child)
		}
		pop = next
	}
	return res, nil
}

func randomGenome(cfg Config, rng *sim.RNG) Genome {
	g := make(Genome, cfg.GenomeLen)
	for i := range g {
		g[i] = rng.Intn(cfg.CreditMax + 1)
	}
	clampGenome(cfg, g)
	return g
}

// crossover mixes two parents gene-wise (uniform crossover).
func crossover(a, b Genome, rng *sim.RNG) Genome {
	child := make(Genome, len(a))
	for i := range child {
		if rng.Bool(0.5) {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
	return child
}

// mutate perturbs genes: half of mutations re-randomize, half nudge ±1.
func mutate(cfg Config, g Genome, rng *sim.RNG) {
	for i := range g {
		if !rng.Bool(cfg.MutationRate) {
			continue
		}
		if rng.Bool(0.5) {
			g[i] = rng.Intn(cfg.CreditMax + 1)
		} else if rng.Bool(0.5) {
			g[i]++
		} else if g[i] > 0 {
			g[i]--
		}
	}
}

// clampGenome enforces per-gene and per-segment bounds, and guarantees at
// least one credit per segment (a shaper with no credits deadlocks its
// core).
func clampGenome(cfg Config, g Genome) {
	for i := range g {
		if g[i] < 0 {
			g[i] = 0
		}
		if g[i] > cfg.CreditMax {
			g[i] = cfg.CreditMax
		}
	}
	seg := cfg.SegmentLen
	if seg <= 0 {
		seg = len(g)
	}
	for s := 0; s+seg <= len(g); s += seg {
		sum := 0
		for i := s; i < s+seg; i++ {
			sum += g[i]
		}
		if cfg.TotalMax > 0 {
			for i := s + seg - 1; sum > cfg.TotalMax && i >= s; i-- {
				over := sum - cfg.TotalMax
				cut := g[i]
				if cut > over {
					cut = over
				}
				g[i] -= cut
				sum -= cut
			}
		}
		if sum == 0 {
			g[s+seg-1] = 1
		}
	}
}
