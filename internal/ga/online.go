package ga

// SplitSegments slices a genome into per-shaper credit arrays of length
// seg. It panics if seg does not divide the genome.
func SplitSegments(g Genome, seg int) [][]int {
	if seg <= 0 || len(g)%seg != 0 {
		panic("ga: SplitSegments with non-dividing segment length")
	}
	out := make([][]int, 0, len(g)/seg)
	for s := 0; s < len(g); s += seg {
		out = append(out, append([]int(nil), g[s:s+seg]...))
	}
	return out
}

// JoinSegments concatenates per-shaper credit arrays into one genome.
func JoinSegments(segs [][]int) Genome {
	var g Genome
	for _, s := range segs {
		g = append(g, s...)
	}
	return g
}
