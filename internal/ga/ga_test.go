package ga

import (
	"testing"
	"testing/quick"

	"camouflage/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.GenomeLen = 0 },
		func(c *Config) { c.Population = 1 },
		func(c *Config) { c.Generations = 0 },
		func(c *Config) { c.Elite = 0 },
		func(c *Config) { c.Elite = c.Population },
		func(c *Config) { c.MutationRate = 1.5 },
		func(c *Config) { c.CreditMax = 0 },
		func(c *Config) { c.TotalMax = 10; c.SegmentLen = 3 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(10)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGAMinimizesSimpleObjective(t *testing.T) {
	// Objective: distance from the target vector. The GA must get close.
	target := Genome{10, 0, 5, 0, 8, 0, 3, 0, 1, 0}
	fit := func(g Genome) float64 {
		var d float64
		for i := range g {
			diff := float64(g[i] - target[i])
			d += diff * diff
		}
		return d
	}
	cfg := DefaultConfig(10)
	cfg.Generations = 40
	cfg.Population = 30
	res, err := Run(cfg, fit, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 25 {
		t.Fatalf("GA converged poorly: fitness %v, best %v", res.BestFitness, res.Best)
	}
	if res.Evaluations != 40*30 {
		t.Fatalf("evaluations %d", res.Evaluations)
	}
	if len(res.History) != 40 {
		t.Fatalf("history length %d", len(res.History))
	}
}

func TestGADeterministic(t *testing.T) {
	fit := func(g Genome) float64 {
		var s float64
		for _, v := range g {
			s += float64(v)
		}
		return s
	}
	cfg := DefaultConfig(6)
	cfg.Generations = 5
	a, _ := Run(cfg, fit, sim.NewRNG(9))
	b, _ := Run(cfg, fit, sim.NewRNG(9))
	if a.BestFitness != b.BestFitness {
		t.Fatal("same-seed GA runs diverged")
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same-seed GA best genomes differ")
		}
	}
}

func TestGARespectsBounds(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.CreditMax = 7
	cfg.TotalMax = 20
	cfg.SegmentLen = 10
	cfg.Generations = 10
	fit := func(g Genome) float64 {
		for _, v := range g {
			if v < 0 || v > 7 {
				t.Fatalf("gene out of bounds: %v", g)
			}
		}
		total := 0
		for _, v := range g {
			total += v
		}
		if total > 20 {
			t.Fatalf("segment total %d exceeds TotalMax", total)
		}
		if total == 0 {
			t.Fatalf("all-zero genome evaluated: %v", g)
		}
		return float64(total)
	}
	if _, err := Run(cfg, fit, sim.NewRNG(3)); err != nil {
		t.Fatal(err)
	}
}

func TestGASeedsEnterPopulation(t *testing.T) {
	seed := Genome{1, 2, 3, 4, 5, 4, 3, 2, 1, 0}
	sawSeed := false
	fit := func(g Genome) float64 {
		match := true
		for i := range g {
			if g[i] != seed[i] {
				match = false
				break
			}
		}
		if match {
			sawSeed = true
		}
		return 1
	}
	cfg := DefaultConfig(10)
	cfg.Generations = 1
	cfg.Seeds = []Genome{seed}
	if _, err := Run(cfg, fit, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if !sawSeed {
		t.Fatal("seed genome never evaluated")
	}
}

func TestOnGenerationHook(t *testing.T) {
	var gens []int
	cfg := DefaultConfig(4)
	cfg.Generations = 3
	cfg.OnGeneration = func(g int) { gens = append(gens, g) }
	Run(cfg, func(Genome) float64 { return 0 }, sim.NewRNG(1))
	if len(gens) != 3 || gens[0] != 0 || gens[2] != 2 {
		t.Fatalf("hook calls %v", gens)
	}
}

func TestHistoryNonIncreasingBest(t *testing.T) {
	// res.BestFitness must equal the minimum of the history.
	fit := func(g Genome) float64 {
		var s float64
		for _, v := range g {
			s += float64(v)
		}
		return s
	}
	cfg := DefaultConfig(8)
	cfg.Generations = 15
	res, _ := Run(cfg, fit, sim.NewRNG(11))
	min := res.History[0]
	for _, h := range res.History {
		if h < min {
			min = h
		}
	}
	if res.BestFitness != min {
		t.Fatalf("best %v != min history %v", res.BestFitness, min)
	}
}

func TestSplitJoinSegments(t *testing.T) {
	g := Genome{1, 2, 3, 4, 5, 6}
	segs := SplitSegments(g, 3)
	if len(segs) != 2 || segs[1][0] != 4 {
		t.Fatalf("split %v", segs)
	}
	back := JoinSegments(segs)
	for i := range g {
		if back[i] != g[i] {
			t.Fatalf("join %v", back)
		}
	}
}

func TestSplitSegmentsPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-dividing segment accepted")
		}
	}()
	SplitSegments(Genome{1, 2, 3}, 2)
}

func TestClampGenomeProperty(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.CreditMax = 5
	cfg.TotalMax = 12
	cfg.SegmentLen = 5
	check := func(raw []int8) bool {
		g := make(Genome, 10)
		for i := range g {
			if i < len(raw) {
				g[i] = int(raw[i])
			}
		}
		clampGenome(cfg, g)
		for s := 0; s+5 <= 10; s += 5 {
			total := 0
			for i := s; i < s+5; i++ {
				if g[i] < 0 || g[i] > 5 {
					return false
				}
				total += g[i]
			}
			if total > 12 || total == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
